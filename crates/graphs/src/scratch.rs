//! Pooled, allocation-free per-query search state.
//!
//! Every beam search needs a visited set, two heaps, and (for batched
//! scoring) a gather buffer of unvisited neighbor ids, their distances,
//! and a payload block of their codes. Allocating those per query puts
//! the allocator on the hot path and cold memory under the beam;
//! [`SearchScratch`] keeps one warm copy of all of them per thread,
//! checked out around each query the way [`crate::visited::VisitedPool`]
//! already pools visited lists for builds.
//!
//! The pool is thread-local (search threads never contend) and keyed by
//! the provider's payload type, so flash searches and full-precision
//! searches each reuse their own scratch. [`ScratchStats`] counts
//! checkouts vs. fresh allocations; steady state is "checkouts grow,
//! creations don't", which the zero-allocation regression test asserts.

use crate::visited::VisitedList;
use crate::OrdF32;
use metrics::QueryProfile;
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Reusable search state for one in-flight query.
///
/// Buffers only ever grow; after the first few queries on a thread every
/// checkout runs the whole beam without touching the allocator.
pub struct SearchScratch<PL> {
    /// Epoch-stamped visited set (O(1) reset).
    pub(crate) visited: VisitedList,
    /// Backing storage for the result max-heap.
    results_buf: Vec<(OrdF32, u32)>,
    /// Backing storage for the frontier min-heap.
    frontier_buf: Vec<(Reverse<OrdF32>, u32)>,
    /// Unvisited neighbors of the candidate being expanded.
    pub(crate) ids: Vec<u32>,
    /// Batched distances, parallel to `ids`.
    pub(crate) dists: Vec<f32>,
    /// Provider payload for the gathered ids (Flash: codeword blocks).
    pub(crate) payload: PL,
    /// Structural cost counters for the query in flight. Zeroed at
    /// checkout, flushed to the thread's [`profile_take`] accumulator at
    /// return — plain integer adds on the search path, no allocation,
    /// no branches.
    pub(crate) profile: QueryProfile,
}

impl<PL: Default> SearchScratch<PL> {
    fn new() -> Self {
        Self {
            visited: VisitedList::new(0),
            results_buf: Vec::new(),
            frontier_buf: Vec::new(),
            ids: Vec::new(),
            dists: Vec::new(),
            payload: PL::default(),
            profile: QueryProfile::new(),
        }
    }

    /// Checks out the result heap (empty, capacity retained).
    pub(crate) fn take_results(&mut self) -> BinaryHeap<(OrdF32, u32)> {
        BinaryHeap::from(std::mem::take(&mut self.results_buf))
    }

    /// Returns the result heap's storage for the next query.
    pub(crate) fn put_results(&mut self, heap: BinaryHeap<(OrdF32, u32)>) {
        let mut v = heap.into_vec();
        v.clear();
        self.results_buf = v;
    }

    /// Checks out the frontier heap (empty, capacity retained).
    pub(crate) fn take_frontier(&mut self) -> BinaryHeap<(Reverse<OrdF32>, u32)> {
        BinaryHeap::from(std::mem::take(&mut self.frontier_buf))
    }

    /// Returns the frontier heap's storage for the next query.
    pub(crate) fn put_frontier(&mut self, heap: BinaryHeap<(Reverse<OrdF32>, u32)>) {
        let mut v = heap.into_vec();
        v.clear();
        self.frontier_buf = v;
    }
}

/// Scratch-pool traffic counters for the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Scratches constructed because the pool was dry.
    pub created: u64,
    /// Total checkouts served.
    pub checkouts: u64,
}

thread_local! {
    static POOL: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>> =
        RefCell::new(HashMap::new());
    static CREATED: Cell<u64> = const { Cell::new(0) };
    static CHECKOUTS: Cell<u64> = const { Cell::new(0) };
    static PROFILE: Cell<QueryProfile> = const { Cell::new(QueryProfile::new()) };
}

/// Process-wide mirrors of the thread-local pool counters, so a scrape
/// can see allocator health across the whole fleet of search threads
/// (the thread-local [`scratch_stats`] only sees the calling thread).
static CREATED_GLOBAL: AtomicU64 = AtomicU64::new(0);
static CHECKOUTS_GLOBAL: AtomicU64 = AtomicU64::new(0);

/// This thread's pool counters (the zero-allocation assertion hook).
pub fn scratch_stats() -> ScratchStats {
    ScratchStats {
        created: CREATED.with(Cell::get),
        checkouts: CHECKOUTS.with(Cell::get),
    }
}

/// Pool counters summed over every thread that ever checked out a
/// scratch — the numbers behind the `graphs.scratch.*` metrics.
pub fn scratch_stats_global() -> ScratchStats {
    ScratchStats {
        created: CREATED_GLOBAL.load(Ordering::Relaxed),
        checkouts: CHECKOUTS_GLOBAL.load(Ordering::Relaxed),
    }
}

/// Registers the process-wide scratch counters with the global
/// [`metrics::MetricsRegistry`] as `graphs.scratch.{created,checkouts}`
/// (idempotent; re-registration replaces the source with an identical
/// one). Steady state on a healthy fleet is "checkouts grow, created
/// doesn't" — the fleet-wide version of the zero-allocation assertion.
pub fn register_scratch_metrics() {
    metrics::MetricsRegistry::global().register_source("graphs.scratch", || {
        let stats = scratch_stats_global();
        metrics::Json::Obj(vec![
            ("created".into(), metrics::Json::uint(stats.created)),
            ("checkouts".into(), metrics::Json::uint(stats.checkouts)),
        ])
    });
}

/// Resets this thread's query-profile accumulator (called by the
/// serving layer at the start of each profiled query).
pub fn profile_reset() {
    PROFILE.with(|p| p.set(QueryProfile::new()));
}

/// Takes this thread's accumulated query profile, leaving zero behind.
pub fn profile_take() -> QueryProfile {
    PROFILE.with(|p| p.replace(QueryProfile::new()))
}

/// Adds `profile` into this thread's accumulator — the hook for search
/// paths that run outside [`with_scratch`] (live `Hnsw` beams, exact
/// rerank, brute-force scans).
pub fn profile_record(profile: QueryProfile) {
    PROFILE.with(|p| {
        let mut current = p.get();
        current.add(&profile);
        p.set(current);
    });
}

/// Runs `f` with a pooled [`SearchScratch`], creating one only if this
/// thread's pool has none for payload type `PL`. The scratch returns to
/// the pool afterwards (it is dropped instead if `f` panics).
pub fn with_scratch<PL: Default + 'static, R>(f: impl FnOnce(&mut SearchScratch<PL>) -> R) -> R {
    CHECKOUTS.with(|c| c.set(c.get() + 1));
    CHECKOUTS_GLOBAL.fetch_add(1, Ordering::Relaxed);
    let mut scratch: Box<SearchScratch<PL>> = POOL
        .with(|p| {
            p.borrow_mut()
                .get_mut(&TypeId::of::<PL>())
                .and_then(Vec::pop)
        })
        .map(|b| b.downcast().expect("pool entries are keyed by TypeId"))
        .unwrap_or_else(|| {
            CREATED.with(|c| c.set(c.get() + 1));
            CREATED_GLOBAL.fetch_add(1, Ordering::Relaxed);
            Box::new(SearchScratch::new())
        });
    scratch.profile = QueryProfile {
        scratch_checkouts: 1,
        ..QueryProfile::new()
    };
    let out = f(&mut scratch);
    let profile = scratch.profile;
    POOL.with(|p| {
        p.borrow_mut()
            .entry(TypeId::of::<PL>())
            .or_default()
            .push(scratch)
    });
    profile_record(profile);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_reused_not_reallocated() {
        let before = scratch_stats();
        for _ in 0..64 {
            with_scratch::<Vec<u8>, _>(|s| {
                s.ids.push(1);
                s.dists.push(0.5);
            });
        }
        let after = scratch_stats();
        assert_eq!(after.checkouts - before.checkouts, 64);
        assert!(
            after.created - before.created <= 1,
            "pool created {} scratches for 64 sequential checkouts",
            after.created - before.created
        );
    }

    #[test]
    fn nested_checkouts_get_distinct_scratches() {
        with_scratch::<(), _>(|outer| {
            outer.ids.push(7);
            with_scratch::<(), _>(|inner| {
                assert!(inner.ids.is_empty() || inner.ids != outer.ids);
            });
        });
    }

    #[test]
    fn heap_buffers_keep_capacity_across_checkouts() {
        with_scratch::<(), _>(|s| {
            let mut h = s.take_results();
            for i in 0..100 {
                h.push((OrdF32(i as f32), i));
            }
            s.put_results(h);
        });
        with_scratch::<(), _>(|s| {
            let h = s.take_results();
            assert!(h.is_empty());
            // Into the backing vec: capacity must have survived the trip.
            let v = {
                let v = h.into_vec();
                assert!(v.capacity() >= 100);
                v
            };
            s.put_results(BinaryHeap::from(v));
        });
    }
}
