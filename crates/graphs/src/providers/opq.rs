//! HNSW-OPQ distance provider — the "optimized variant" extension the
//! paper's Section 3.2.4 anticipates.
//!
//! Identical deployment shape to [`super::PqProvider`] (ADC in Candidate
//! Acquisition, SDC in Neighbor Selection); the only difference is the
//! learned orthogonal rotation applied before encoding, which lowers
//! quantization error on correlated data at the cost of a longer training
//! phase — exactly the efficiency/quality trade the paper's Remark (1)
//! warns about.

use crate::provider::DistanceProvider;
use quantizers::OptimizedProductQuantizer;
use vecstore::VectorSet;

/// OPQ-compressed distances for graph construction.
pub struct OpqProvider {
    base: VectorSet,
    opq: OptimizedProductQuantizer,
    /// Per-vector codes, `m` bytes each, contiguous.
    codes: Vec<u8>,
    /// SDC tables (`m * k * k` floats).
    sdc: Vec<f32>,
}

impl OpqProvider {
    /// Trains OPQ on a sample of `base` and encodes every vector.
    pub fn new(
        base: VectorSet,
        m: usize,
        bits: u8,
        opq_iters: usize,
        train_sample: usize,
        seed: u64,
    ) -> Self {
        let sample = base.stride_sample(train_sample);
        let opq = OptimizedProductQuantizer::train(&sample, m, bits, opq_iters, 12, seed);
        Self::from_quantizer(base, opq)
    }

    /// Encodes `base` through an already-trained quantizer (rotation and
    /// codebooks are reused, not retrained). Sharded and replicated
    /// deployments train once on the full corpus and share the quantizer
    /// across partitions.
    pub fn from_quantizer(base: VectorSet, opq: OptimizedProductQuantizer) -> Self {
        let m = opq.subspaces();
        let mut codes = Vec::with_capacity(base.len() * m);
        for v in base.iter() {
            codes.extend_from_slice(&opq.encode(v));
        }
        let sdc = opq.sdc_tables();
        Self {
            base,
            opq,
            codes,
            sdc,
        }
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &OptimizedProductQuantizer {
        &self.opq
    }

    #[inline]
    fn codes_of(&self, id: u32) -> &[u8] {
        let m = self.opq.subspaces();
        &self.codes[id as usize * m..(id as usize + 1) * m]
    }
}

impl DistanceProvider for OpqProvider {
    /// The ADC table of the prepared (rotated) vector.
    type QueryCtx = Vec<f32>;
    type NodePayload = ();

    fn len(&self) -> usize {
        self.base.len()
    }

    fn base(&self) -> &VectorSet {
        &self.base
    }

    fn prepare_insert(&self, id: u32) -> Vec<f32> {
        self.opq.adc_table(self.base.get(id as usize))
    }

    fn prepare_query(&self, v: &[f32]) -> Vec<f32> {
        self.opq.adc_table(v)
    }

    #[inline]
    fn dist_to(&self, ctx: &Vec<f32>, id: u32) -> f32 {
        self.opq.adc_distance(ctx, self.codes_of(id))
    }

    #[inline]
    fn dist_between(&self, a: u32, b: u32) -> f32 {
        self.opq
            .sdc_distance(&self.sdc, self.codes_of(a), self.codes_of(b))
    }

    fn coded(&self) -> bool {
        true
    }

    fn aux_bytes(&self) -> usize {
        use quantizers::Codec;
        // Codes replace the vectors; the rotation matrix and SDC tables are
        // shared one-off state.
        self.base.len() * self.opq.code_bytes()
            + self.sdc.len() * 4
            + self.opq.dim() * self.opq.dim() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::{Hnsw, HnswParams};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn correlated_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorSet::with_capacity(dim, n);
        for _ in 0..n {
            let shared: f32 = rng.gen_range(-2.0..2.0);
            let v: Vec<f32> = (0..dim)
                .map(|i| shared * (1.0 + i as f32 * 0.1) + rng.gen_range(-0.3..0.3))
                .collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn adc_approximates_true_distance() {
        let base = correlated_set(300, 8, 1);
        let p = OpqProvider::new(base.clone(), 4, 6, 3, 200, 2);
        let ctx = p.prepare_insert(0);
        let approx = p.dist_to(&ctx, 1);
        let exact = simdops::l2_sq(base.get(0), base.get(1));
        assert!(
            (approx - exact).abs() < 0.5 * (1.0 + exact),
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn sdc_symmetric() {
        let base = correlated_set(200, 8, 3);
        let p = OpqProvider::new(base, 4, 4, 2, 150, 4);
        assert_eq!(p.dist_between(3, 9), p.dist_between(9, 3));
    }

    #[test]
    fn hnsw_opq_end_to_end() {
        let base = correlated_set(400, 8, 5);
        let index = Hnsw::build(
            OpqProvider::new(base.clone(), 4, 6, 3, 300, 6),
            HnswParams {
                c: 48,
                r: 8,
                seed: 7,
            },
        );
        // Rerank fixes residual quantization error; top-1 should mostly hit.
        let mut hits = 0;
        let gt = vecstore::ground_truth(&base, &base.slice(0, 10), 1);
        for (qi, truth) in gt.iter().enumerate() {
            let found = index.search_rerank(base.get(qi), 1, 48, 8);
            if found.first().map(|h| h.id) == Some(u64::from(truth[0].id)) {
                hits += 1;
            }
        }
        assert!(hits >= 8, "top-1 self-recall {hits}/10 too low");
    }

    #[test]
    fn aux_bytes_smaller_than_full_vectors() {
        let base = correlated_set(600, 16, 8);
        let full = base.payload_bytes();
        let p = OpqProvider::new(base, 4, 4, 2, 300, 9);
        assert!(p.aux_bytes() < full, "OPQ {} vs full {full}", p.aux_bytes());
    }
}
