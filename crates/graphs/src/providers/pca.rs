//! HNSW-PCA distance provider (paper Section 3.2.3).

use crate::provider::DistanceProvider;
use quantizers::PcaCodec;
use vecstore::VectorSet;

/// PCA-projected distances: every vector is replaced by its first `d_PCA`
/// principal components and distances are computed in the reduced space.
pub struct PcaProvider {
    base: VectorSet,
    pca: PcaCodec,
    /// Projected vectors, `d_PCA` floats each, contiguous.
    projected: VectorSet,
}

impl PcaProvider {
    /// Fits PCA on a sample and projects every vector to `d_pca` dims.
    pub fn new(base: VectorSet, d_pca: usize, train_sample: usize) -> Self {
        let sample = base.stride_sample(train_sample);
        let pca = PcaCodec::fit(&sample, d_pca);
        Self::with_codec(base, pca)
    }

    /// Fits PCA choosing `d_PCA` by cumulative variance (the paper's rule:
    /// smallest `d` with `f(d) >= alpha`, `alpha = 0.9` in experiments).
    pub fn with_variance(base: VectorSet, alpha: f64, train_sample: usize) -> Self {
        let sample = base.stride_sample(train_sample);
        let pca = PcaCodec::fit_for_variance(&sample, alpha);
        Self::with_codec(base, pca)
    }

    /// Projects `base` through an already-fitted codec. Sharded and
    /// replicated deployments fit once on the full corpus and share the
    /// basis across partitions, so every partition projects into the same
    /// subspace.
    pub fn from_codec(base: VectorSet, pca: PcaCodec) -> Self {
        Self::with_codec(base, pca)
    }

    fn with_codec(base: VectorSet, pca: PcaCodec) -> Self {
        let mut projected = VectorSet::with_capacity(pca.kept_dims(), base.len());
        for v in base.iter() {
            projected.push(&pca.project(v));
        }
        Self {
            base,
            pca,
            projected,
        }
    }

    /// The fitted codec.
    pub fn codec(&self) -> &PcaCodec {
        &self.pca
    }

    /// Retained dimensionality `d_PCA`.
    pub fn kept_dims(&self) -> usize {
        self.pca.kept_dims()
    }
}

impl DistanceProvider for PcaProvider {
    /// The projected query.
    type QueryCtx = Vec<f32>;
    type NodePayload = ();

    fn len(&self) -> usize {
        self.base.len()
    }

    fn base(&self) -> &VectorSet {
        &self.base
    }

    fn prepare_insert(&self, id: u32) -> Vec<f32> {
        self.projected.get(id as usize).to_vec()
    }

    fn prepare_query(&self, v: &[f32]) -> Vec<f32> {
        self.pca.project(v)
    }

    #[inline]
    fn dist_to(&self, ctx: &Vec<f32>, id: u32) -> f32 {
        simdops::l2_sq(ctx, self.projected.get(id as usize))
    }

    #[inline]
    fn dist_between(&self, a: u32, b: u32) -> f32 {
        simdops::l2_sq(
            self.projected.get(a as usize),
            self.projected.get(b as usize),
        )
    }

    fn coded(&self) -> bool {
        true
    }

    fn aux_bytes(&self) -> usize {
        self.projected.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Data with strong low-dimensional structure: 3 informative axes plus
    /// tiny noise on 13 more.
    fn structured_set(n: usize, seed: u64) -> VectorSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorSet::with_capacity(16, n);
        for _ in 0..n {
            let mut v = vec![0.0f32; 16];
            for slot in v.iter_mut().take(3) {
                *slot = rng.gen_range(-5.0..5.0);
            }
            for slot in v.iter_mut().skip(3) {
                *slot = rng.gen_range(-0.01..0.01);
            }
            s.push(&v);
        }
        s
    }

    #[test]
    fn projected_distance_tracks_exact() {
        let base = structured_set(300, 1);
        let p = PcaProvider::new(base.clone(), 3, 200);
        let ctx = p.prepare_insert(0);
        for id in 1..30u32 {
            let approx = p.dist_to(&ctx, id);
            let exact = simdops::l2_sq(base.get(0), base.get(id as usize));
            assert!(
                (approx - exact).abs() < 0.02 * (1.0 + exact),
                "id {id}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn variance_rule_finds_low_dim() {
        let base = structured_set(300, 2);
        let p = PcaProvider::with_variance(base, 0.99, 200);
        assert!(p.kept_dims() <= 3, "kept {} dims", p.kept_dims());
    }

    #[test]
    fn aux_bytes_shrinks_with_projection() {
        let base = structured_set(100, 3);
        let full = base.payload_bytes();
        let p = PcaProvider::new(base, 3, 100);
        assert!(p.aux_bytes() < full);
        assert_eq!(p.aux_bytes(), 100 * 3 * 4);
    }

    #[test]
    fn query_and_insert_ctx_agree() {
        let base = structured_set(50, 4);
        let q0 = base.get(0).to_vec();
        let p = PcaProvider::new(base, 3, 50);
        let via_query = p.prepare_query(&q0);
        let via_insert = p.prepare_insert(0);
        for (a, b) in via_query.iter().zip(via_insert.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
