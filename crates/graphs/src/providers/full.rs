//! The full-precision (baseline HNSW) distance provider.

use crate::provider::DistanceProvider;
use simdops::l2_sq;
use vecstore::VectorSet;

/// Distances computed directly on the original `f32` vectors — the baseline
/// whose construction profile (Figure 1: >90 % distance computation) the
/// paper sets out to fix.
pub struct FullPrecision {
    base: VectorSet,
}

impl FullPrecision {
    /// Wraps the database vectors.
    pub fn new(base: VectorSet) -> Self {
        Self { base }
    }
}

impl DistanceProvider for FullPrecision {
    type QueryCtx = Vec<f32>;
    type NodePayload = ();

    fn len(&self) -> usize {
        self.base.len()
    }

    fn base(&self) -> &VectorSet {
        &self.base
    }

    fn prepare_insert(&self, id: u32) -> Vec<f32> {
        self.base.get(id as usize).to_vec()
    }

    fn prepare_query(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.base.dim(), "query dimensionality mismatch");
        v.to_vec()
    }

    #[inline]
    fn dist_to(&self, ctx: &Vec<f32>, id: u32) -> f32 {
        l2_sq(ctx, self.base.get(id as usize))
    }

    #[inline]
    fn dist_between(&self, a: u32, b: u32) -> f32 {
        l2_sq(self.base.get(a as usize), self.base.get(b as usize))
    }

    #[inline]
    fn prefetch(&self, id: u32) {
        simdops::prefetch_slice(self.base.get(id as usize));
    }

    fn aux_bytes(&self) -> usize {
        // The index must retain the full vectors to compute distances.
        self.base.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> VectorSet {
        VectorSet::from_flat(2, vec![0.0, 0.0, 3.0, 4.0, 1.0, 0.0])
    }

    #[test]
    fn distances_are_exact() {
        let p = FullPrecision::new(set());
        let ctx = p.prepare_insert(0);
        assert_eq!(p.dist_to(&ctx, 1), 25.0);
        assert_eq!(p.dist_between(0, 2), 1.0);
    }

    #[test]
    fn query_ctx_matches_insert_ctx() {
        let p = FullPrecision::new(set());
        let q = p.prepare_query(&[0.0, 0.0]);
        let i = p.prepare_insert(0);
        assert_eq!(p.dist_to(&q, 1), p.dist_to(&i, 1));
    }

    #[test]
    fn aux_bytes_counts_vectors() {
        let p = FullPrecision::new(set());
        assert_eq!(p.aux_bytes(), 3 * 2 * 4);
    }
}
