//! HNSW-PQ distance provider (paper Section 3.2.1).

use crate::provider::DistanceProvider;
use quantizers::ProductQuantizer;
use vecstore::VectorSet;

/// Product-quantized distances: the Candidate Acquisition stage scans a
/// per-insert **asymmetric** distance table (ADC), the Neighbor Selection
/// stage looks up precomputed centroid-to-centroid **symmetric** tables
/// (SDC) — the exact deployment the paper describes for HNSW-PQ.
pub struct PqProvider {
    base: VectorSet,
    pq: ProductQuantizer,
    /// Per-vector PQ codes, `m` bytes each, contiguous.
    codes: Vec<u8>,
    /// SDC tables (`m * k * k` floats).
    sdc: Vec<f32>,
}

impl PqProvider {
    /// Trains PQ on a sample of `base` and encodes every vector.
    ///
    /// `m` = subspaces (`M_PQ`), `bits` = codeword length (`L_PQ`),
    /// `train_sample` = training subset size.
    pub fn new(base: VectorSet, m: usize, bits: u8, train_sample: usize, seed: u64) -> Self {
        let sample = base.stride_sample(train_sample);
        let pq = ProductQuantizer::train(&sample, m, bits, 20, seed);
        Self::from_quantizer(base, pq)
    }

    /// Encodes `base` through an already-trained quantizer (codebooks and
    /// SDC tables are derived from it, not retrained). Sharded and
    /// replicated deployments train once on the full corpus and share the
    /// quantizer across partitions.
    pub fn from_quantizer(base: VectorSet, pq: ProductQuantizer) -> Self {
        let m = pq.subspaces();
        let mut codes = Vec::with_capacity(base.len() * m);
        for v in base.iter() {
            codes.extend_from_slice(&pq.encode(v));
        }
        let sdc = pq.sdc_tables();
        Self {
            base,
            pq,
            codes,
            sdc,
        }
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.pq
    }

    #[inline]
    fn codes_of(&self, id: u32) -> &[u8] {
        let m = self.pq.subspaces();
        &self.codes[id as usize * m..(id as usize + 1) * m]
    }
}

impl DistanceProvider for PqProvider {
    /// The ADC table of the prepared vector.
    type QueryCtx = Vec<f32>;
    type NodePayload = ();

    fn len(&self) -> usize {
        self.base.len()
    }

    fn base(&self) -> &VectorSet {
        &self.base
    }

    fn prepare_insert(&self, id: u32) -> Vec<f32> {
        self.pq.adc_table(self.base.get(id as usize))
    }

    fn prepare_query(&self, v: &[f32]) -> Vec<f32> {
        self.pq.adc_table(v)
    }

    #[inline]
    fn dist_to(&self, ctx: &Vec<f32>, id: u32) -> f32 {
        self.pq.adc_distance(ctx, self.codes_of(id))
    }

    #[inline]
    fn dist_between(&self, a: u32, b: u32) -> f32 {
        self.pq
            .sdc_distance(&self.sdc, self.codes_of(a), self.codes_of(b))
    }

    fn coded(&self) -> bool {
        true
    }

    fn aux_bytes(&self) -> usize {
        // Packed codes replace the original vectors; SDC tables are shared.
        use quantizers::Codec;
        self.base.len() * self.pq.code_bytes() + self.sdc.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorSet::with_capacity(dim, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn adc_approximates_true_distance() {
        let base = random_set(300, 8, 1);
        let p = PqProvider::new(base.clone(), 4, 6, 200, 2);
        let ctx = p.prepare_insert(0);
        let approx = p.dist_to(&ctx, 1);
        let exact = simdops::l2_sq(base.get(0), base.get(1));
        assert!(
            (approx - exact).abs() < 0.5 * (1.0 + exact),
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn sdc_distance_symmetric() {
        let base = random_set(200, 8, 3);
        let p = PqProvider::new(base, 4, 4, 150, 4);
        assert_eq!(p.dist_between(3, 9), p.dist_between(9, 3));
    }

    #[test]
    fn nearer_points_get_smaller_adc() {
        // Points on a line: ADC distances should preserve gross ordering.
        let mut s = VectorSet::new(2);
        for i in 0..64 {
            s.push(&[i as f32, 0.0]);
        }
        let p = PqProvider::new(s, 2, 5, 64, 5);
        let ctx = p.prepare_insert(0);
        assert!(p.dist_to(&ctx, 2) < p.dist_to(&ctx, 40));
    }

    #[test]
    fn aux_bytes_smaller_than_full_vectors() {
        let base = random_set(400, 16, 6);
        let full_bytes = base.payload_bytes();
        let p = PqProvider::new(base, 4, 4, 200, 7);
        assert!(
            p.aux_bytes() < full_bytes,
            "PQ codes {} should beat full vectors {full_bytes}",
            p.aux_bytes()
        );
    }
}
