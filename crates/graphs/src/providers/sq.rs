//! HNSW-SQ distance provider (paper Section 3.2.2).

use crate::provider::DistanceProvider;
use quantizers::sq::SqRange;
use quantizers::ScalarQuantizer;
use vecstore::VectorSet;

/// Scalar-quantized distances: every vector is stored as one `u8` per
/// dimension and compared with integer SIMD kernels, avoiding any decode
/// (the "optimized version" the paper implements from the Qdrant report).
pub struct SqProvider {
    base: VectorSet,
    sq: ScalarQuantizer,
    /// Per-vector codes, `dim` bytes each, contiguous.
    codes: Vec<u8>,
}

impl SqProvider {
    /// Trains the quantizer on the full value range and encodes everything.
    ///
    /// `bits` must be `<= 8` (the `u8` storage path; the paper finds 8 bits
    /// optimal precisely because it matches the `u8` lane).
    pub fn new(base: VectorSet, bits: u8) -> Self {
        assert!(bits <= 8, "SqProvider stores u8 codes; use bits <= 8");
        let sq = ScalarQuantizer::train(&base, bits, SqRange::Global);
        Self::from_quantizer(base, sq)
    }

    /// Encodes `base` through an already-trained quantizer.
    ///
    /// Sharded and replicated deployments train one quantizer on the full
    /// corpus and share it across every partition, so per-partition value
    /// ranges cannot skew the grid; only encoding is paid per partition.
    pub fn from_quantizer(base: VectorSet, sq: ScalarQuantizer) -> Self {
        let mut codes = Vec::with_capacity(base.len() * base.dim());
        for v in base.iter() {
            codes.extend_from_slice(&sq.encode_u8(v));
        }
        Self { base, sq, codes }
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &ScalarQuantizer {
        &self.sq
    }

    #[inline]
    fn codes_of(&self, id: u32) -> &[u8] {
        let d = self.base.dim();
        &self.codes[id as usize * d..(id as usize + 1) * d]
    }
}

impl DistanceProvider for SqProvider {
    /// The encoded query.
    type QueryCtx = Vec<u8>;
    type NodePayload = ();

    fn len(&self) -> usize {
        self.base.len()
    }

    fn base(&self) -> &VectorSet {
        &self.base
    }

    fn prepare_insert(&self, id: u32) -> Vec<u8> {
        self.codes_of(id).to_vec()
    }

    fn prepare_query(&self, v: &[f32]) -> Vec<u8> {
        self.sq.encode_u8(v)
    }

    #[inline]
    fn dist_to(&self, ctx: &Vec<u8>, id: u32) -> f32 {
        self.sq.dist_sq_u8(ctx, self.codes_of(id))
    }

    #[inline]
    fn dist_between(&self, a: u32, b: u32) -> f32 {
        self.sq.dist_sq_u8(self.codes_of(a), self.codes_of(b))
    }

    fn coded(&self) -> bool {
        true
    }

    fn aux_bytes(&self) -> usize {
        self.codes.len()
    }
}

/// 16-bit scalar quantization (the paper's `L_SQ = 16` configuration):
/// codes are `u16`, distances go through the slower widening path — which
/// is exactly why the paper finds 8 bits optimal (Figure 4a).
pub struct Sq16Provider {
    base: VectorSet,
    sq: ScalarQuantizer,
    codes: Vec<u16>,
}

impl Sq16Provider {
    /// Trains a 16-bit quantizer and encodes everything.
    pub fn new(base: VectorSet) -> Self {
        let sq = ScalarQuantizer::train(&base, 16, SqRange::Global);
        let mut codes = Vec::with_capacity(base.len() * base.dim());
        for v in base.iter() {
            codes.extend_from_slice(&sq.encode(v));
        }
        Self { base, sq, codes }
    }

    #[inline]
    fn codes_of(&self, id: u32) -> &[u16] {
        let d = self.base.dim();
        &self.codes[id as usize * d..(id as usize + 1) * d]
    }
}

impl DistanceProvider for Sq16Provider {
    type QueryCtx = Vec<u16>;
    type NodePayload = ();

    fn len(&self) -> usize {
        self.base.len()
    }

    fn base(&self) -> &VectorSet {
        &self.base
    }

    fn prepare_insert(&self, id: u32) -> Vec<u16> {
        self.codes_of(id).to_vec()
    }

    fn prepare_query(&self, v: &[f32]) -> Vec<u16> {
        self.sq.encode(v)
    }

    #[inline]
    fn dist_to(&self, ctx: &Vec<u16>, id: u32) -> f32 {
        self.sq.dist_sq_u16(ctx, self.codes_of(id))
    }

    #[inline]
    fn dist_between(&self, a: u32, b: u32) -> f32 {
        self.sq.dist_sq_u16(self.codes_of(a), self.codes_of(b))
    }

    fn coded(&self) -> bool {
        true
    }

    fn aux_bytes(&self) -> usize {
        self.codes.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorSet::with_capacity(dim, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn sq8_distance_close_to_exact() {
        let base = random_set(100, 16, 1);
        let p = SqProvider::new(base.clone(), 8);
        let ctx = p.prepare_insert(0);
        for id in 1..20u32 {
            let approx = p.dist_to(&ctx, id);
            let exact = simdops::l2_sq(base.get(0), base.get(id as usize));
            assert!(
                (approx - exact).abs() < 0.05 * (1.0 + exact),
                "id {id}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn distance_symmetric_and_zero_on_self() {
        let base = random_set(50, 8, 2);
        let p = SqProvider::new(base, 8);
        assert_eq!(p.dist_between(3, 7), p.dist_between(7, 3));
        assert_eq!(p.dist_between(5, 5), 0.0);
    }

    #[test]
    fn compression_is_4x_for_8_bits() {
        let base = random_set(64, 32, 3);
        let full = base.payload_bytes();
        let p = SqProvider::new(base, 8);
        assert_eq!(p.aux_bytes() * 4, full);
    }

    #[test]
    #[should_panic(expected = "bits <= 8")]
    fn sixteen_bits_rejected() {
        let base = random_set(10, 4, 4);
        let _ = SqProvider::new(base, 16);
    }
}
