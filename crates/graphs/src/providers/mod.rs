//! Distance providers for the baseline methods of the paper.
//!
//! * [`FullPrecision`] — standard HNSW: every distance streams full `f32`
//!   vectors through SIMD registers;
//! * [`PqProvider`] — HNSW-PQ (Section 3.2.1): per-insert ADC tables in the
//!   CA stage, precomputed SDC tables in the NS stage;
//! * [`SqProvider`] — HNSW-SQ (Section 3.2.2): `u8` codes compared with
//!   integer SIMD kernels;
//! * [`PcaProvider`] — HNSW-PCA (Section 3.2.3): distances on the projected
//!   `d_PCA`-dimensional vectors.
//!
//! None of these change the *memory-access pattern* of construction — each
//! neighbor visit still random-accesses that neighbor's code — which is the
//! "lesson learned" that motivates Flash.

mod full;
mod opq;
mod pca;
mod pq;
mod sq;

pub use full::FullPrecision;
pub use opq::OpqProvider;
pub use pca::PcaProvider;
pub use pq::PqProvider;
pub use sq::{Sq16Provider, SqProvider};
