//! Vamana — the DiskANN graph builder (Jayaram Subramanya et al., NeurIPS
//! 2019), reproduced as a generality target beyond the paper's Figure 14.
//!
//! The paper's Section 2.1.1 places Vamana in the same construction family
//! as HNSW/NSG/τ-MG: a Candidate Acquisition stage (greedy beam search for
//! a per-vertex candidate pool) followed by Neighbor Selection (here the
//! **α-RNG "RobustPrune"** rule, which keeps an edge to `v` unless an
//! already-selected `u` satisfies `α·δ(u,v) ≤ δ(x,v)`). Because both stages
//! route every distance through [`DistanceProvider`], plugging in the Flash
//! provider accelerates Vamana construction exactly as it does the three
//! graphs the paper evaluates.
//!
//! The build follows DiskANN's two-pass recipe:
//!
//! 1. **Pass 1** (`α = 1`): the shared flat-build skeleton produces an
//!    MRNG-pruned graph from per-vertex candidate pools.
//! 2. **Pass 2** (`α > 1`): every vertex re-prunes the union of its current
//!    neighbors and its two-hop neighborhood with the slacked rule, then
//!    reverse edges are inserted with overflow re-pruning — this is the
//!    pass that creates the long-range "highway" edges DiskANN relies on.

use crate::flat_build::{build_flat_nested, search_flat, AlphaRule, FlatParams, PruneRule};
use crate::graph::FlatGraph;
use crate::provider::DistanceProvider;
use crate::Hit;
use rayon::prelude::*;

/// Vamana construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct VamanaParams {
    /// Maximum out-degree `R`.
    pub r: usize,
    /// Candidate pool size `L` (DiskANN's search-list size; plays the role
    /// of the paper's `C`).
    pub c: usize,
    /// The α slack of the second pruning pass (`α ≥ 1`; DiskANN defaults
    /// to 1.2).
    pub alpha: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VamanaParams {
    fn default() -> Self {
        Self {
            r: 16,
            c: 128,
            alpha: 1.2,
            seed: 0x5eed,
        }
    }
}

/// A built Vamana index.
pub struct Vamana<P: DistanceProvider> {
    provider: P,
    graph: FlatGraph,
    params: VamanaParams,
}

impl<P: DistanceProvider> Vamana<P> {
    /// Builds the index: pass 1 with `α = 1`, pass 2 with `params.alpha`.
    pub fn build(provider: P, params: VamanaParams) -> Self {
        let flat = FlatParams {
            r: params.r,
            c: params.c,
            seed: params.seed,
        };
        // Both refinement passes mutate per-vertex lists, so the graph stays
        // nested until the final freeze into CSR.
        let (mut adj, entry, provider) = build_flat_nested(provider, flat, &AlphaRule::new(1.0));
        if adj.len() > 2 {
            alpha_pass(&provider, &mut adj, entry, params);
            repair_connectivity(&mut adj, entry);
        }
        Self {
            provider,
            graph: FlatGraph::from_nested(&adj, entry),
            params,
        }
    }

    /// The navigating graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }

    /// The distance provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Construction parameters.
    pub fn params(&self) -> &VamanaParams {
        &self.params
    }

    /// k-NN search from the medoid entry point.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        search_flat(&self.provider, &self.graph, query, k, ef)
    }

    /// Search with exact reranking on the original vectors.
    pub fn search_rerank(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        rerank_factor: usize,
    ) -> Vec<Hit> {
        let pool = self.search(query, (k * rerank_factor.max(1)).max(k), ef);
        crate::rerank_exact(self.provider.base(), query, pool, k)
    }

    /// Index size: adjacency + provider auxiliary bytes.
    pub fn index_bytes(&self) -> usize {
        self.graph.adjacency_bytes() + self.provider.aux_bytes()
    }
}

/// The α refinement pass: every vertex re-prunes its one- and two-hop
/// neighborhood with the slacked rule, then reverse edges are inserted
/// (with overflow re-pruning from the receiving vertex's perspective).
fn alpha_pass<P: DistanceProvider>(
    provider: &P,
    adj: &mut Vec<Vec<u32>>,
    _entry: u32,
    params: VamanaParams,
) {
    let rule = AlphaRule::new(params.alpha);
    let n = adj.len();

    // Re-prune pools in parallel; pools are read-only views of the pass-1
    // adjacency, so no locking is needed.
    let new_adj: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|x| {
            let mut pool: Vec<u32> = Vec::with_capacity(params.c);
            pool.extend_from_slice(&adj[x as usize]);
            for &nb in &adj[x as usize] {
                pool.extend_from_slice(&adj[nb as usize]);
            }
            pool.sort_unstable();
            pool.dedup();
            pool.retain(|&v| v != x);
            let mut cands: Vec<(f32, u32)> = pool
                .iter()
                .map(|&v| (provider.dist_between(x, v), v))
                .collect();
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            robust_prune(provider, &rule, &cands, params.r)
        })
        .collect();
    *adj = new_adj;

    // Reverse-edge insertion (sequential: mutates many lists).
    for x in 0..n as u32 {
        let outs = adj[x as usize].clone();
        for v in outs {
            if adj[v as usize].contains(&x) {
                continue;
            }
            if adj[v as usize].len() < params.r {
                adj[v as usize].push(x);
            } else {
                let mut cands: Vec<(f32, u32)> = adj[v as usize]
                    .iter()
                    .chain(std::iter::once(&x))
                    .map(|&u| (provider.dist_between(v, u), u))
                    .collect();
                cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                adj[v as usize] = robust_prune(provider, &rule, &cands, params.r);
            }
        }
    }
}

/// DiskANN's RobustPrune over a distance-sorted candidate list.
fn robust_prune<P: DistanceProvider>(
    provider: &P,
    rule: &AlphaRule,
    sorted_cands: &[(f32, u32)],
    r: usize,
) -> Vec<u32> {
    let mut selected: Vec<(f32, u32)> = Vec::with_capacity(r);
    for &(d, v) in sorted_cands {
        if selected.len() >= r {
            break;
        }
        let dominated = selected
            .iter()
            .any(|&(_, u)| rule.dominated(d, provider.dist_between(u, v)));
        if !dominated {
            selected.push((d, v));
        }
    }
    selected.into_iter().map(|(_, v)| v).collect()
}

/// Guarantees reachability from the entry after re-pruning: unreachable
/// vertices are linked from the entry (the entry's list may exceed `R`,
/// mirroring NSG's simplified tree-linking repair).
fn repair_connectivity(adj: &mut [Vec<u32>], entry: u32) {
    let seen = crate::flat_build::reachable_mask(adj, entry);
    let orphans: Vec<u32> = seen
        .iter()
        .enumerate()
        .filter(|(_, &s)| !s)
        .map(|(x, _)| x as u32)
        .collect();
    adj[entry as usize].extend(orphans);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    fn build_grid(side: usize, alpha: f32) -> Vamana<FullPrecision> {
        Vamana::build(
            FullPrecision::new(grid(side)),
            VamanaParams {
                r: 8,
                c: 32,
                alpha,
                seed: 11,
            },
        )
    }

    #[test]
    fn finds_nearest_on_grid() {
        let index = build_grid(10, 1.2);
        let hits = index.search(&[6.2, 3.1], 1, 32);
        assert_eq!(hits[0].id, 63, "expected grid point (6,3)");
    }

    #[test]
    fn fully_reachable_after_alpha_pass() {
        let index = build_grid(9, 1.3);
        assert_eq!(index.graph().reachable_from_entry(), 81);
    }

    #[test]
    fn alpha_one_matches_param_default_degrees() {
        // α = 1 must still produce a legal bounded-degree graph.
        let index = build_grid(8, 1.0);
        let g = index.graph();
        for i in 0..g.len() {
            if i == g.entry as usize {
                continue; // repair may oversize the entry
            }
            let deg = g.neighbors(i as u32).len();
            assert!(deg <= 8, "degree {deg} at {i}");
        }
    }

    #[test]
    fn higher_alpha_keeps_at_least_as_many_edges() {
        // The α slack makes domination *harder*, so pools retain more
        // (or equal) edges before the R cap bites.
        let tight = build_grid(10, 1.0);
        let slack = build_grid(10, 1.4);
        assert!(
            slack.graph().edges() >= tight.graph().edges(),
            "α=1.4 edges {} < α=1.0 edges {}",
            slack.graph().edges(),
            tight.graph().edges()
        );
    }

    #[test]
    fn recall_high_on_grid() {
        let base = grid(12);
        let index = Vamana::build(
            FullPrecision::new(base.clone()),
            VamanaParams {
                r: 8,
                c: 48,
                alpha: 1.2,
                seed: 3,
            },
        );
        let gt = vecstore::ground_truth(&base, &base.slice(0, 30), 3);
        let mut hit = 0;
        for (qi, truth) in gt.iter().enumerate() {
            let found = index.search(base.get(qi), 3, 48);
            let ids: Vec<u64> = found.iter().map(|r| r.id).collect();
            hit += truth
                .iter()
                .filter(|t| ids.contains(&u64::from(t.id)))
                .count();
        }
        let recall = hit as f64 / 90.0;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn empty_and_single_vector() {
        let empty = Vamana::build(
            FullPrecision::new(VectorSet::new(2)),
            VamanaParams::default(),
        );
        assert!(empty.search(&[0.0, 0.0], 1, 8).is_empty());

        let mut one = VectorSet::new(2);
        one.push(&[5.0, 5.0]);
        let index = Vamana::build(FullPrecision::new(one), VamanaParams::default());
        let hits = index.search(&[0.0, 0.0], 1, 8);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    #[should_panic(expected = "α ≥ 1")]
    fn alpha_below_one_rejected() {
        let _ = AlphaRule::new(0.9);
    }

    #[test]
    fn search_rerank_sorted_exact() {
        let index = build_grid(8, 1.2);
        let hits = index.search_rerank(&[3.3, 3.3], 4, 32, 3);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(hits[0].id, 3 * 8 + 3);
    }
}
