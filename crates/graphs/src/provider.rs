//! The distance-computation abstraction shared by all graph builders.

use vecstore::VectorSet;

/// Supplies every distance the CA and NS stages need, plus two hooks that
/// let a codec co-locate per-node data with the adjacency lists (the heart
/// of Flash's access-aware layout, Section 3.3.4 of the paper).
///
/// Implementations must be cheap to call concurrently: construction inserts
/// vertices from many threads, each holding its own [`Self::QueryCtx`].
pub trait DistanceProvider: Sync + Send {
    /// Per-insert / per-query scratch state. For PQ and Flash this is the
    /// asymmetric distance table of the inserted vector; for the
    /// full-precision path it is just the query vector itself.
    type QueryCtx: Send;

    /// Per-node data stored *inside* the graph's node records, mutated under
    /// the node's lock. Flash keeps its subspace-major neighbor codeword
    /// blocks here; baseline providers use `()`. `'static` because search
    /// kernels pool payload-typed scratch state in thread-local storage
    /// keyed by `TypeId` (see [`crate::scratch`]).
    type NodePayload: Send + Sync + Default + 'static;

    /// Number of database vectors.
    fn len(&self) -> usize;

    /// Whether the provider holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw vectors (used for reranking, medoid computation, and the
    /// final recall evaluation — never inside the CA/NS hot loops).
    fn base(&self) -> &VectorSet;

    /// Builds the scratch state for inserting database vector `id`.
    fn prepare_insert(&self, id: u32) -> Self::QueryCtx;

    /// Builds the scratch state for an external query vector.
    fn prepare_query(&self, v: &[f32]) -> Self::QueryCtx;

    /// CA-stage distance from the prepared vector to database vector `id`.
    fn dist_to(&self, ctx: &Self::QueryCtx, id: u32) -> f32;

    /// NS-stage distance between two database vectors.
    fn dist_between(&self, a: u32, b: u32) -> f32;

    /// Batched CA-stage distances from the prepared vector to all of `ids`
    /// (a visited vertex's neighbor list). `payload` is the visited vertex's
    /// node payload, whose layout mirrors `ids` (see [`Self::sync_payload`]).
    ///
    /// The default implementation loops over [`Self::dist_to`] — one random
    /// memory access per neighbor, exactly the baseline behaviour the paper
    /// profiles. Flash overrides this with register-resident table lookups.
    fn dist_to_neighbors(
        &self,
        ctx: &Self::QueryCtx,
        ids: &[u32],
        _payload: &Self::NodePayload,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend(ids.iter().map(|&id| self.dist_to(ctx, id)));
    }

    /// Called (under the owning node's lock) whenever a node's neighbor list
    /// changes, so payload-carrying providers can rebuild the co-located
    /// codeword blocks for the new `ids`.
    fn sync_payload(&self, _payload: &mut Self::NodePayload, _ids: &[u32]) {}

    /// Hint that the distance data of `id` (codes, or the raw vector) will
    /// be needed shortly. Search kernels call this for the *next* frontier
    /// candidate while the current candidate's block is being scored, so
    /// the lines are in flight before the beam gets there. Purely advisory;
    /// the default does nothing.
    #[inline]
    fn prefetch(&self, _id: u32) {}

    /// Whether this provider's CA-stage distances are computed against
    /// compressed codes (`true` for PQ/OPQ/SQ/PCA/Flash) rather than
    /// full-precision vectors. Purely observational: query-cost profiles
    /// use it to split distance evaluations coded-vs-exact. Constant per
    /// provider, so kernels hoist it out of their loops.
    fn coded(&self) -> bool {
        false
    }

    /// Bytes of compressed per-vector state this provider stores globally
    /// (codes, tables) — for index-size accounting. Excludes node payloads,
    /// which the graph accounts separately.
    fn aux_bytes(&self) -> usize {
        0
    }

    /// Bytes one node payload occupies for a neighbor list of capacity
    /// `cap`. Used for index-size accounting (Figure 7).
    fn payload_bytes(&self, _cap: usize) -> usize {
        0
    }
}
