//! Generic HNSW construction and search (paper Algorithm 1).
//!
//! The builder is parameterized over a [`DistanceProvider`], so the same
//! construction loop yields HNSW, HNSW-PQ, HNSW-SQ, HNSW-PCA and HNSW-Flash
//! depending only on which provider is plugged in — mirroring how the paper
//! integrates each coding method into the hnswlib pipeline for a fair
//! comparison.
//!
//! Construction follows the standard multi-threaded recipe: vertex levels
//! are drawn from an exponentially decaying distribution up front, vertices
//! are inserted in parallel (rayon), each insert performs a greedy descent
//! through the upper layers followed by a beam search with `ef = C` per
//! layer (**Candidate Acquisition**), then the heuristic pruning rule keeps
//! at most `R` diverse neighbors (**Neighbor Selection**) and adds reverse
//! edges, pruning overflow with the same rule. Per-node mutexes protect
//! neighbor lists; the provider's node payloads (e.g. Flash codeword
//! blocks) are kept in sync under the same lock.

use crate::graph::GraphLayers;
use crate::provider::DistanceProvider;
use crate::visited::{VisitedList, VisitedPool};
use crate::{Hit, OrdF32};
use metrics::QueryProfile;
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Construction hyper-parameters (paper Section 2.2).
#[derive(Debug, Clone, Copy)]
pub struct HnswParams {
    /// Maximum candidate-set size `C` (a.k.a. `efConstruction`).
    pub c: usize,
    /// Maximum neighbors `R` in layers above the base; the base layer allows
    /// `2R`, following the original paper and hnswlib.
    pub r: usize,
    /// RNG seed for level sampling.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            c: 128,
            r: 16,
            seed: 0x5eed,
        }
    }
}

impl HnswParams {
    /// Neighbor capacity at `layer`.
    #[inline]
    pub fn cap(&self, layer: usize) -> usize {
        if layer == 0 {
            self.r * 2
        } else {
            self.r
        }
    }
}

/// Hard cap on sampled levels; with `ml = 1/ln(R)` even billion-scale
/// graphs stay far below this.
const MAX_LEVEL: usize = 24;

struct NodeData<PL> {
    /// Neighbor lists, one per layer `0..=level`.
    neighbors: Vec<Vec<u32>>,
    /// Provider payloads parallel to `neighbors`.
    payloads: Vec<PL>,
}

struct EntryPoint {
    node: u32,
    level: usize,
    initialized: bool,
}

/// An HNSW index under construction or ready for search.
pub struct Hnsw<P: DistanceProvider> {
    provider: P,
    params: HnswParams,
    levels: Vec<u8>,
    nodes: Vec<Mutex<NodeData<P::NodePayload>>>,
    entry: RwLock<EntryPoint>,
    visited: VisitedPool,
}

impl<P: DistanceProvider> Hnsw<P> {
    /// Prepares an empty index over the provider's vectors: levels are
    /// sampled, node records allocated, nothing inserted yet.
    pub fn new(provider: P, params: HnswParams) -> Self {
        assert!(params.r >= 1, "R must be at least 1");
        assert!(params.c >= params.r, "C must be at least R (paper: R <= C)");
        let n = provider.len();
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let ml = 1.0 / f64::ln((params.r.max(2)) as f64);
        let levels: Vec<u8> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                ((-u.ln() * ml) as usize).min(MAX_LEVEL) as u8
            })
            .collect();
        let nodes = levels
            .iter()
            .map(|&l| {
                let layers = usize::from(l) + 1;
                Mutex::new(NodeData {
                    neighbors: vec![Vec::new(); layers],
                    payloads: (0..layers).map(|_| P::NodePayload::default()).collect(),
                })
            })
            .collect();
        Self {
            provider,
            params,
            levels,
            nodes,
            entry: RwLock::new(EntryPoint {
                node: 0,
                level: 0,
                initialized: false,
            }),
            visited: VisitedPool::new(n),
        }
    }

    /// Restores an index from a frozen topology (the persisted form) and a
    /// deterministically re-derived provider — the serve-after-reload path.
    ///
    /// Node payloads are rebuilt from the adjacency via
    /// [`DistanceProvider::sync_payload`], so batched-lookup providers
    /// (Flash) serve at full speed. A node's level is recovered as the
    /// highest layer where it has neighbors; nodes isolated above the base
    /// layer lose those empty upper levels, which affects neither search
    /// nor subsequent inserts (an empty layer list routes nothing).
    ///
    /// # Panics
    /// Panics if the provider and graph disagree on the vector count.
    pub fn from_frozen(provider: P, params: HnswParams, graph: &GraphLayers) -> Self {
        let n = provider.len();
        assert_eq!(
            n,
            graph.len(),
            "provider covers {n} vectors, graph {}",
            graph.len()
        );
        let mut levels = vec![0u8; n];
        for l in 1..graph.num_layers() {
            for (i, nbrs) in graph.layer(l).rows().enumerate() {
                if !nbrs.is_empty() {
                    levels[i] = levels[i].max(l as u8);
                }
            }
        }
        if n > 0 {
            levels[graph.entry as usize] = levels[graph.entry as usize].max(graph.max_layer as u8);
        }
        let nodes: Vec<Mutex<NodeData<P::NodePayload>>> = levels
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let layers = usize::from(l) + 1;
                let mut neighbors = Vec::with_capacity(layers);
                let mut payloads = Vec::with_capacity(layers);
                for layer in 0..layers {
                    let nbrs = if layer < graph.num_layers() {
                        graph.layer(layer).neighbors(i).to_vec()
                    } else {
                        Vec::new()
                    };
                    let mut payload = P::NodePayload::default();
                    provider.sync_payload(&mut payload, &nbrs);
                    neighbors.push(nbrs);
                    payloads.push(payload);
                }
                Mutex::new(NodeData {
                    neighbors,
                    payloads,
                })
            })
            .collect();
        Self {
            params,
            levels,
            nodes,
            entry: RwLock::new(EntryPoint {
                node: graph.entry,
                level: graph.max_layer,
                initialized: n > 0,
            }),
            visited: VisitedPool::new(n),
            provider,
        }
    }

    /// Builds the index over all provider vectors with parallel insertion.
    pub fn build(provider: P, params: HnswParams) -> Self {
        let index = Self::new(provider, params);
        let n = index.provider.len();
        if n == 0 {
            return index;
        }
        // Seed the graph with the highest-level node so the parallel phase
        // always finds an initialized entry point.
        let seed_node = (0..n).max_by_key(|&i| index.levels[i]).unwrap() as u32;
        index.insert(seed_node);
        (0..n as u32)
            .into_par_iter()
            .filter(|&i| i != seed_node)
            .for_each(|i| {
                index.insert(i);
            });
        index
    }

    /// The construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// The distance provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Number of vectors the index covers.
    pub fn len(&self) -> usize {
        self.provider.len()
    }

    /// Whether the index covers no vectors.
    pub fn is_empty(&self) -> bool {
        self.provider.is_empty()
    }

    /// Sampled level of `id`.
    pub fn level_of(&self, id: u32) -> usize {
        usize::from(self.levels[id as usize])
    }

    /// Inserts database vector `id` into the graph (paper Algorithm 1,
    /// lines 2–8). Thread-safe; every vector should be inserted exactly
    /// once.
    pub fn insert(&self, id: u32) {
        let level = usize::from(self.levels[id as usize]);
        // First insertion initializes the entry point.
        {
            let mut ep = self.entry.write();
            if !ep.initialized {
                ep.node = id;
                ep.level = level;
                ep.initialized = true;
                return;
            }
        }

        let ctx = self.provider.prepare_insert(id);
        let (mut cur, ep_level) = {
            let ep = self.entry.read();
            (ep.node, ep.level)
        };

        // Greedy descent through layers above this vertex's level.
        // Construction cost is not query cost: the profile is discarded.
        let mut discard = QueryProfile::new();
        let mut layer = ep_level;
        while layer > level {
            cur = self.greedy_closest(&ctx, cur, layer, &mut discard);
            layer -= 1;
        }

        // CA + NS per layer, top-down.
        let mut visited = self.visited.take();
        for l in (0..=level.min(ep_level)).rev() {
            let candidates =
                self.search_layer(&ctx, cur, self.params.c, l, &mut visited, &mut discard);
            if candidates.is_empty() {
                continue;
            }
            cur = candidates[0].1;
            let selected = self.select_neighbors(&candidates, self.params.cap(l));

            // Install this vertex's neighbor list.
            {
                let mut node = self.nodes[id as usize].lock();
                node.neighbors[l] = selected.clone();
                let NodeData {
                    neighbors,
                    payloads,
                } = &mut *node;
                self.provider.sync_payload(&mut payloads[l], &neighbors[l]);
            }
            // Reverse edges (line 7 of Algorithm 1).
            for &(d, y) in candidates.iter().filter(|&&(_, y)| selected.contains(&y)) {
                self.link(y, id, d, l);
            }
        }
        self.visited.put(visited);

        // Promote the entry point if this vertex tops the hierarchy.
        if level > ep_level {
            let mut ep = self.entry.write();
            if level > ep.level {
                ep.node = id;
                ep.level = level;
            }
        }
    }

    /// Greedy walk to the locally closest vertex at `layer` (used for the
    /// descent through upper layers, ef = 1).
    fn greedy_closest(
        &self,
        ctx: &P::QueryCtx,
        start: u32,
        layer: usize,
        profile: &mut QueryProfile,
    ) -> u32 {
        let cf = self.provider.coded() as u64;
        let mut cur = start;
        let mut cur_d = self.provider.dist_to(ctx, cur);
        profile.dist_coded += cf;
        profile.dist_exact += 1 - cf;
        let mut ids = Vec::new();
        let mut dists = Vec::new();
        loop {
            self.neighbor_dists(ctx, cur, layer, &mut ids, &mut dists, profile);
            profile.hops_upper += 1;
            let mut improved = false;
            for (&id, &d) in ids.iter().zip(dists.iter()) {
                if d < cur_d {
                    cur = id;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Copies `node`'s neighbor ids at `layer` into `ids` and their
    /// distances to the prepared vector into `dists`, under the node lock so
    /// a payload-carrying provider sees a consistent (ids, payload) pair.
    #[inline]
    fn neighbor_dists(
        &self,
        ctx: &P::QueryCtx,
        node: u32,
        layer: usize,
        ids: &mut Vec<u32>,
        dists: &mut Vec<f32>,
        profile: &mut QueryProfile,
    ) {
        let guard = self.nodes[node as usize].lock();
        ids.clear();
        if layer >= guard.neighbors.len() {
            dists.clear();
            return;
        }
        ids.extend_from_slice(&guard.neighbors[layer]);
        self.provider
            .dist_to_neighbors(ctx, ids, &guard.payloads[layer], dists);
        let cf = self.provider.coded() as u64;
        let n = ids.len() as u64;
        profile.rows_scored += 1;
        profile.dist_coded += n * cf;
        profile.dist_exact += n * (1 - cf);
        profile.codeword_bytes += self.provider.payload_bytes(ids.len()) as u64;
    }

    /// Beam search at one layer (the Candidate Acquisition stage): returns
    /// up to `ef` nearest vertices, ascending by distance.
    fn search_layer(
        &self,
        ctx: &P::QueryCtx,
        entry: u32,
        ef: usize,
        layer: usize,
        visited: &mut VisitedList,
        profile: &mut QueryProfile,
    ) -> Vec<(f32, u32)> {
        let cf = self.provider.coded() as u64;
        let d0 = self.provider.dist_to(ctx, entry);
        profile.dist_coded += cf;
        profile.dist_exact += 1 - cf;
        visited.check_and_mark(entry);
        profile.visited_inserts += 1;

        // `top` is a max-heap of the best `ef` (farthest on top);
        // `frontier` a min-heap of vertices to expand.
        let mut top: BinaryHeap<(OrdF32, u32)> = BinaryHeap::with_capacity(ef + 1);
        let mut frontier: BinaryHeap<(Reverse<OrdF32>, u32)> = BinaryHeap::new();
        top.push((OrdF32(d0), entry));
        frontier.push((Reverse(OrdF32(d0)), entry));

        let mut ids = Vec::new();
        let mut dists = Vec::new();
        while let Some((Reverse(OrdF32(d)), u)) = frontier.pop() {
            let worst = top.peek().map(|&(OrdF32(w), _)| w).unwrap_or(f32::INFINITY);
            if d > worst && top.len() >= ef {
                break;
            }
            self.neighbor_dists(ctx, u, layer, &mut ids, &mut dists, profile);
            profile.hops_base += 1;
            for (&id, &nd) in ids.iter().zip(dists.iter()) {
                if visited.check_and_mark(id) {
                    continue;
                }
                profile.visited_inserts += 1;
                let worst = top.peek().map(|&(OrdF32(w), _)| w).unwrap_or(f32::INFINITY);
                // `<=` rather than `<`: quantized providers produce integer
                // distances with heavy ties, and rejecting boundary ties
                // strands true neighbors outside the beam.
                if top.len() < ef || nd <= worst {
                    top.push((OrdF32(nd), id));
                    if top.len() > ef {
                        top.pop();
                    }
                    frontier.push((Reverse(OrdF32(nd)), id));
                }
            }
        }

        let mut out: Vec<(f32, u32)> = top.into_iter().map(|(OrdF32(d), id)| (d, id)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// The heuristic Neighbor Selection rule: walk candidates in ascending
    /// distance; keep `v` unless some already-selected `u` is closer to `v`
    /// than `v` is to the inserted vector (paper Section 2.2's MRNG-style
    /// rule).
    fn select_neighbors(&self, candidates: &[(f32, u32)], r: usize) -> Vec<u32> {
        let mut selected: Vec<(f32, u32)> = Vec::with_capacity(r);
        for &(d, v) in candidates {
            if selected.len() >= r {
                break;
            }
            let dominated = selected
                .iter()
                .any(|&(_, u)| self.provider.dist_between(u, v) < d);
            if !dominated {
                selected.push((d, v));
            }
        }
        selected.into_iter().map(|(_, v)| v).collect()
    }

    /// Adds the reverse edge `y → x`, pruning with the same heuristic if
    /// `y`'s list overflows its capacity.
    fn link(&self, y: u32, x: u32, d_xy: f32, layer: usize) {
        let cap = self.params.cap(layer);
        let mut node = self.nodes[y as usize].lock();
        if layer >= node.neighbors.len() {
            return; // y does not exist at this layer (stale candidate)
        }
        if node.neighbors[layer].contains(&x) {
            return;
        }
        if node.neighbors[layer].len() < cap {
            node.neighbors[layer].push(x);
        } else {
            // Re-run the selection heuristic over current neighbors + x,
            // with distances measured from y.
            let mut cands: Vec<(f32, u32)> = node.neighbors[layer]
                .iter()
                .map(|&nb| (self.provider.dist_between(y, nb), nb))
                .collect();
            cands.push((d_xy, x));
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            node.neighbors[layer] = self.select_neighbors(&cands, cap);
        }
        let NodeData {
            neighbors,
            payloads,
        } = &mut *node;
        self.provider
            .sync_payload(&mut payloads[layer], &neighbors[layer]);
    }

    /// k-NN search (the paper's search procedure: greedy descent, then a
    /// base-layer beam search with `ef`, reporting provider distances).
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        let ep = self.entry.read();
        if !ep.initialized {
            return Vec::new();
        }
        let (mut cur, ep_level) = (ep.node, ep.level);
        drop(ep);

        let ctx = self.provider.prepare_query(query);
        let mut profile = QueryProfile::new();
        for layer in (1..=ep_level).rev() {
            cur = self.greedy_closest(&ctx, cur, layer, &mut profile);
        }
        let mut visited = self.visited.take();
        let found = self.search_layer(&ctx, cur, ef.max(k), 0, &mut visited, &mut profile);
        self.visited.put(visited);
        crate::scratch::profile_record(profile);
        found
            .into_iter()
            .take(k)
            .map(|(dist, id)| Hit {
                id: u64::from(id),
                dist,
            })
            .collect()
    }

    /// k-NN search restricted to vectors accepted by `accept` (hybrid /
    /// attribute-constrained ANNS). The beam *traverses* every vertex —
    /// rejected vertices still route the search, as in hnswlib's filtering
    /// mode — but only accepted vertices enter the result set, so recall is
    /// measured against the filtered ground truth.
    pub fn search_filtered(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        accept: &(dyn Fn(u32) -> bool + Sync),
    ) -> Vec<Hit> {
        let ep = self.entry.read();
        if !ep.initialized {
            return Vec::new();
        }
        let (mut cur, ep_level) = (ep.node, ep.level);
        drop(ep);

        let ctx = self.provider.prepare_query(query);
        let mut profile = QueryProfile::new();
        for layer in (1..=ep_level).rev() {
            cur = self.greedy_closest(&ctx, cur, layer, &mut profile);
        }

        let cf = self.provider.coded() as u64;
        let ef = ef.max(k);
        let mut visited = self.visited.take();
        let d0 = self.provider.dist_to(&ctx, cur);
        profile.dist_coded += cf;
        profile.dist_exact += 1 - cf;
        visited.check_and_mark(cur);
        profile.visited_inserts += 1;

        // `results` holds only accepted vertices; `frontier` expands all.
        let mut results: BinaryHeap<(OrdF32, u32)> = BinaryHeap::with_capacity(ef + 1);
        let mut frontier: BinaryHeap<(Reverse<OrdF32>, u32)> = BinaryHeap::new();
        if accept(cur) {
            results.push((OrdF32(d0), cur));
        }
        frontier.push((Reverse(OrdF32(d0)), cur));

        let mut ids = Vec::new();
        let mut dists = Vec::new();
        while let Some((Reverse(OrdF32(d)), u)) = frontier.pop() {
            let worst = results
                .peek()
                .map(|&(OrdF32(w), _)| w)
                .unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            self.neighbor_dists(&ctx, u, 0, &mut ids, &mut dists, &mut profile);
            profile.hops_base += 1;
            for (&id, &nd) in ids.iter().zip(dists.iter()) {
                if visited.check_and_mark(id) {
                    continue;
                }
                profile.visited_inserts += 1;
                let worst = results
                    .peek()
                    .map(|&(OrdF32(w), _)| w)
                    .unwrap_or(f32::INFINITY);
                if results.len() < ef || nd <= worst {
                    if accept(id) {
                        results.push((OrdF32(nd), id));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                    frontier.push((Reverse(OrdF32(nd)), id));
                }
            }
        }
        self.visited.put(visited);
        crate::scratch::profile_record(profile);

        let mut out: Vec<Hit> = results
            .into_iter()
            .map(|(OrdF32(dist), id)| Hit {
                id: u64::from(id),
                dist,
            })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        out.truncate(k);
        out
    }

    /// Parallel k-NN over a batch of queries (one rayon task per query;
    /// searches are read-only and share the visited-list pool).
    pub fn search_batch(
        &self,
        queries: &vecstore::VectorSet,
        k: usize,
        ef: usize,
    ) -> Vec<Vec<Hit>> {
        (0..queries.len())
            .into_par_iter()
            .map(|qi| self.search(queries.get(qi), k, ef))
            .collect()
    }

    /// Search followed by exact reranking on the original vectors: the
    /// candidate pool of size `max(ef, k·rerank_factor)` is re-scored with
    /// full-precision distances (the paper applies this step to Flash).
    pub fn search_rerank(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        rerank_factor: usize,
    ) -> Vec<Hit> {
        let pool = self.search(query, (k * rerank_factor.max(1)).max(k), ef);
        crate::rerank_exact(self.provider.base(), query, pool, k)
    }

    /// Freezes the adjacency into a read-only [`GraphLayers`] (used by the
    /// ADSampling / VBase search variants and the graph-quality stats).
    /// The builder's nested per-node lists are packed into the cache-line
    /// aligned CSR layout in one pass.
    pub fn freeze(&self) -> GraphLayers {
        let ep = self.entry.read();
        let max_layer = ep.level;
        let n = self.nodes.len();
        let mut layers = vec![vec![Vec::new(); n]; max_layer + 1];
        for (i, node) in self.nodes.iter().enumerate() {
            let guard = node.lock();
            for (l, nbrs) in guard.neighbors.iter().enumerate() {
                if l <= max_layer {
                    layers[l][i] = nbrs.clone();
                }
            }
        }
        GraphLayers::from_nested(layers, ep.node, max_layer)
    }

    /// Total index size in bytes: adjacency ids + provider auxiliary state +
    /// node payloads (Figure 7's metric; the baseline additionally counts
    /// its full-precision vectors via the provider's `aux_bytes`).
    pub fn index_bytes(&self) -> usize {
        let mut total = self.provider.aux_bytes();
        for node in &self.nodes {
            let guard = node.lock();
            for (l, nbrs) in guard.neighbors.iter().enumerate() {
                total += nbrs.len() * std::mem::size_of::<u32>();
                let _ = l;
            }
            for (l, _) in guard.payloads.iter().enumerate() {
                total += self.provider.payload_bytes(self.params.cap(l));
            }
        }
        total
    }

    /// Consumes the index, returning the provider.
    pub fn into_provider(self) -> P {
        self.provider
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::FullPrecision;
    use vecstore::{ground_truth, VectorSet};

    fn grid_2d(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    fn build_grid(side: usize) -> Hnsw<FullPrecision> {
        let base = grid_2d(side);
        Hnsw::build(
            FullPrecision::new(base),
            HnswParams {
                c: 32,
                r: 8,
                seed: 7,
            },
        )
    }

    #[test]
    fn exact_on_tiny_grid() {
        let index = build_grid(10);
        let hits = index.search(&[3.1, 4.2], 1, 16);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 34, "expected grid point (3,4)");
    }

    #[test]
    fn recall_high_on_grid() {
        let index = build_grid(16); // 256 points
        let base = index.provider().base().clone();
        let mut queries = VectorSet::new(2);
        for i in 0..20 {
            queries.push(&[(i % 15) as f32 + 0.3, (i / 4) as f32 + 0.4]);
        }
        let gt = ground_truth(&base, &queries, 5);
        let mut hit = 0;
        let mut total = 0;
        for (qi, truth) in gt.iter().enumerate() {
            let found = index.search(queries.get(qi), 5, 48);
            let found_ids: Vec<u64> = found.iter().map(|r| r.id).collect();
            for t in truth {
                total += 1;
                if found_ids.contains(&u64::from(t.id)) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.95, "recall {recall}");
    }

    #[test]
    fn degrees_respect_caps() {
        let index = build_grid(12);
        let g = index.freeze();
        let r = index.params().r;
        for l in 0..g.num_layers() {
            let cap = if l == 0 { 2 * r } else { r };
            for nbrs in g.layer(l).rows() {
                assert!(nbrs.len() <= cap, "layer {l} degree {} > {cap}", nbrs.len());
            }
        }
    }

    #[test]
    fn no_self_edges_or_duplicates() {
        let index = build_grid(10);
        let g = index.freeze();
        for l in 0..g.num_layers() {
            for (i, nbrs) in g.layer(l).rows().enumerate() {
                assert!(!nbrs.contains(&(i as u32)), "self edge at {i}");
                let mut sorted = nbrs.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), nbrs.len(), "duplicate edge at {i}");
            }
        }
    }

    #[test]
    fn base_layer_connected() {
        let index = build_grid(10);
        let g = index.freeze();
        // BFS over layer 0 from the entry point.
        let n = g.len();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[g.entry as usize] = true;
        queue.push_back(g.entry);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(0, u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(count, n, "base layer must be fully reachable");
    }

    #[test]
    fn empty_index_searches_empty() {
        let index = Hnsw::build(FullPrecision::new(VectorSet::new(2)), HnswParams::default());
        assert!(index.search(&[0.0, 0.0], 3, 8).is_empty());
    }

    #[test]
    fn single_vector_index() {
        let mut s = VectorSet::new(2);
        s.push(&[1.0, 1.0]);
        let index = Hnsw::build(FullPrecision::new(s), HnswParams::default());
        let hits = index.search(&[0.0, 0.0], 1, 4);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn rerank_orders_by_exact_distance() {
        let index = build_grid(8);
        let hits = index.search_rerank(&[2.2, 2.2], 4, 32, 3);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(hits[0].id, 8 * 2 + 2);
    }

    #[test]
    fn index_bytes_positive_and_scales() {
        let small = build_grid(6);
        let big = build_grid(12);
        assert!(small.index_bytes() > 0);
        assert!(big.index_bytes() > small.index_bytes());
    }

    #[test]
    fn from_frozen_round_trips_search() {
        let base = grid_2d(12);
        let built = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 21,
            },
        );
        let frozen = built.freeze();
        let restored = Hnsw::from_frozen(FullPrecision::new(base), *built.params(), &frozen);
        for q in [[3.3f32, 8.8], [0.0, 0.0], [11.5, 2.2]] {
            let a: Vec<u64> = built.search(&q, 5, 48).iter().map(|r| r.id).collect();
            let b: Vec<u64> = restored.search(&q, 5, 48).iter().map(|r| r.id).collect();
            assert_eq!(a, b, "query {q:?}");
        }
        // The restored index stays insertable: freeze/restore/insert must
        // keep the graph searchable (smoke-level guarantee).
        assert_eq!(restored.len(), 144);
    }

    #[test]
    fn from_frozen_empty_graph() {
        let g = GraphLayers::from_nested(vec![vec![]], 0, 0);
        let restored = Hnsw::from_frozen(
            FullPrecision::new(VectorSet::new(2)),
            HnswParams::default(),
            &g,
        );
        assert!(restored.search(&[0.0, 0.0], 1, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "provider covers")]
    fn from_frozen_rejects_length_mismatch() {
        let base = grid_2d(4);
        let built = Hnsw::build(
            FullPrecision::new(base),
            HnswParams {
                c: 16,
                r: 4,
                seed: 2,
            },
        );
        let frozen = built.freeze();
        let _ = Hnsw::from_frozen(
            FullPrecision::new(grid_2d(3)),
            HnswParams::default(),
            &frozen,
        );
    }

    #[test]
    fn search_results_sorted_ascending() {
        let index = build_grid(10);
        let hits = index.search(&[5.5, 5.5], 8, 32);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }
}
