//! Plain adjacency containers produced by the builders.
//!
//! Builders work on locked node records; once construction finishes they
//! freeze into these read-only structures, which the search routines (and
//! the ADSampling / VBase variants) traverse without synchronization.

/// A frozen multi-layer graph (HNSW shape).
///
/// `layers[l][node]` is the neighbor list of `node` at layer `l`; nodes
/// absent from a layer have empty lists. Layer 0 contains every node.
#[derive(Debug, Clone)]
pub struct GraphLayers {
    /// Adjacency per layer; `layers[0]` is the base layer.
    pub layers: Vec<Vec<Vec<u32>>>,
    /// Entry point for searches (highest-layer node).
    pub entry: u32,
    /// Index of the highest non-empty layer.
    pub max_layer: usize,
}

impl GraphLayers {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, |l| l.len())
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbor list of `node` at `layer`.
    #[inline]
    pub fn neighbors(&self, layer: usize, node: u32) -> &[u32] {
        &self.layers[layer][node as usize]
    }

    /// Total directed edges in the base layer.
    pub fn base_edges(&self) -> usize {
        self.layers[0].iter().map(|l| l.len()).sum()
    }

    /// Adjacency memory in bytes (ids only): the graph part of the paper's
    /// index-size metric.
    pub fn adjacency_bytes(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|layer| layer.iter())
            .map(|l| l.len() * std::mem::size_of::<u32>())
            .sum()
    }
}

/// A frozen single-layer graph (NSG / τ-MG shape) with a designated entry
/// (the medoid for NSG).
#[derive(Debug, Clone)]
pub struct FlatGraph {
    /// Adjacency: `adj[node]` is the neighbor list.
    pub adj: Vec<Vec<u32>>,
    /// Search entry point.
    pub entry: u32,
}

impl FlatGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbor list of `node`.
    #[inline]
    pub fn neighbors(&self, node: u32) -> &[u32] {
        &self.adj[node as usize]
    }

    /// Total directed edges.
    pub fn edges(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum()
    }

    /// Adjacency memory in bytes (ids only).
    pub fn adjacency_bytes(&self) -> usize {
        self.adj
            .iter()
            .map(|l| l.len() * std::mem::size_of::<u32>())
            .sum()
    }

    /// Checks every node can reach every other via BFS from `entry`
    /// (treating edges as directed). Returns the number of reachable nodes.
    pub fn reachable_from_entry(&self) -> usize {
        let n = self.adj.len();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[self.entry as usize] = true;
        queue.push_back(self.entry);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> FlatGraph {
        FlatGraph {
            adj: vec![vec![1], vec![2], vec![0]],
            entry: 0,
        }
    }

    #[test]
    fn flat_graph_accounting() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edges(), 3);
        assert_eq!(g.adjacency_bytes(), 12);
    }

    #[test]
    fn reachability_full_cycle() {
        assert_eq!(triangle().reachable_from_entry(), 3);
    }

    #[test]
    fn reachability_detects_islands() {
        let g = FlatGraph {
            adj: vec![vec![1], vec![0], vec![]],
            entry: 0,
        };
        assert_eq!(g.reachable_from_entry(), 2);
    }

    #[test]
    fn layers_accounting() {
        let g = GraphLayers {
            layers: vec![
                vec![vec![1], vec![0], vec![0, 1]],
                vec![vec![], vec![], vec![]],
            ],
            entry: 2,
            max_layer: 0,
        };
        assert_eq!(g.len(), 3);
        assert_eq!(g.base_edges(), 4);
        assert_eq!(g.adjacency_bytes(), 16);
        assert_eq!(g.neighbors(0, 2), &[0, 1]);
    }
}
