//! Flat, cache-friendly adjacency containers produced by the builders.
//!
//! Builders work on locked node records; once construction finishes they
//! freeze into these read-only structures, which the search routines (and
//! the ADSampling / VBase variants) traverse without synchronization.
//!
//! The frozen layout is CSR (compressed sparse row), not nested vecs:
//! every neighbor list lives in one flat, 64-byte-aligned slab and starts
//! on a cache-line boundary, so expanding a candidate touches one or two
//! lines instead of chasing a `Vec<Vec<u32>>` double indirection. The
//! builders still assemble nested `Vec<Vec<u32>>` (cheap to mutate under
//! per-node locks) and convert once via [`CsrLayer::from_nested`].

/// `u32` slots per 64-byte cache line; neighbor rows start on multiples
/// of this so a degree-16 list occupies exactly one line.
pub const LINE_U32S: usize = 16;

/// One 64-byte-aligned line of neighbor-id storage.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
struct Line([u32; LINE_U32S]);

/// One adjacency layer in CSR form with cache-line-aligned rows.
///
/// `starts[node]` is the row's first slot in the flat id slab (always a
/// multiple of [`LINE_U32S`]) and `lens[node]` its degree; rows are padded
/// with zeros to the next line boundary, so the logical content is exactly
/// the nested adjacency it was frozen from.
#[derive(Debug, Clone, Default)]
pub struct CsrLayer {
    starts: Vec<u32>,
    lens: Vec<u32>,
    lines: Vec<Line>,
    edges: usize,
}

impl CsrLayer {
    /// Freezes nested adjacency into CSR. Row order and within-row
    /// neighbor order are preserved exactly.
    pub fn from_nested(adj: &[Vec<u32>]) -> Self {
        let total_lines: usize = adj.iter().map(|l| l.len().div_ceil(LINE_U32S)).sum();
        assert!(
            total_lines * LINE_U32S <= u32::MAX as usize,
            "adjacency too large for u32 CSR offsets"
        );
        let mut starts = Vec::with_capacity(adj.len());
        let mut lens = Vec::with_capacity(adj.len());
        let mut lines = vec![Line([0; LINE_U32S]); total_lines];
        let slab: &mut [u32] = {
            // SAFETY: `Line` is `#[repr(C)]` over `[u32; LINE_U32S]`, so a
            // `Vec<Line>` is a contiguous array of `lines.len() * LINE_U32S`
            // properly initialized `u32`s.
            unsafe {
                std::slice::from_raw_parts_mut(
                    lines.as_mut_ptr().cast::<u32>(),
                    total_lines * LINE_U32S,
                )
            }
        };
        let mut cursor = 0usize;
        let mut edges = 0usize;
        for list in adj {
            starts.push(cursor as u32);
            lens.push(list.len() as u32);
            slab[cursor..cursor + list.len()].copy_from_slice(list);
            cursor += list.len().div_ceil(LINE_U32S) * LINE_U32S;
            edges += list.len();
        }
        Self {
            starts,
            lens,
            lines,
            edges,
        }
    }

    /// Number of nodes (rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the layer has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The flat id slab (rows plus zero padding), line-aligned.
    #[inline]
    fn slab(&self) -> &[u32] {
        // SAFETY: see `from_nested` — `Vec<Line>` is a contiguous `u32` array.
        unsafe {
            std::slice::from_raw_parts(
                self.lines.as_ptr().cast::<u32>(),
                self.lines.len() * LINE_U32S,
            )
        }
    }

    /// Neighbor row of `node`.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        let start = self.starts[node] as usize;
        let len = self.lens[node] as usize;
        &self.slab()[start..start + len]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: usize) -> usize {
        self.lens[node] as usize
    }

    /// Total directed edges.
    #[inline]
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Iterates rows in node order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(move |i| self.neighbors(i))
    }

    /// Thaws back into nested adjacency (tests, legacy interop).
    pub fn to_nested(&self) -> Vec<Vec<u32>> {
        self.rows().map(<[u32]>::to_vec).collect()
    }
}

impl PartialEq for CsrLayer {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.rows().eq(other.rows())
    }
}

impl Eq for CsrLayer {}

/// A frozen multi-layer graph (HNSW shape).
///
/// Layer `l`, node `node` has the neighbor row `neighbors(l, node)`; nodes
/// absent from a layer have empty rows. Layer 0 contains every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphLayers {
    /// Per-layer CSR adjacency; index 0 is the base layer.
    layers: Vec<CsrLayer>,
    /// Entry point for searches (highest-layer node).
    pub entry: u32,
    /// Index of the highest non-empty layer.
    pub max_layer: usize,
}

impl GraphLayers {
    /// Freezes nested per-layer adjacency (`layers[l][node]`) into CSR.
    pub fn from_nested(layers: Vec<Vec<Vec<u32>>>, entry: u32, max_layer: usize) -> Self {
        Self {
            layers: layers.iter().map(|l| CsrLayer::from_nested(l)).collect(),
            entry,
            max_layer,
        }
    }

    /// Views a flat graph as a single-layer topology (the VBase/ADSampling
    /// serving path for NSG-family indexes).
    pub fn from_flat(flat: &FlatGraph) -> Self {
        Self {
            layers: vec![flat.csr.clone()],
            entry: flat.entry,
            max_layer: 0,
        }
    }

    /// Number of layers (≥ 1 for a non-degenerate graph).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The CSR adjacency of `layer`.
    #[inline]
    pub fn layer(&self, layer: usize) -> &CsrLayer {
        &self.layers[layer]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, CsrLayer::len)
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbor list of `node` at `layer`.
    #[inline]
    pub fn neighbors(&self, layer: usize, node: u32) -> &[u32] {
        self.layers[layer].neighbors(node as usize)
    }

    /// Total directed edges in the base layer.
    pub fn base_edges(&self) -> usize {
        self.layers[0].edges()
    }

    /// Adjacency memory in bytes (ids only): the graph part of the paper's
    /// index-size metric.
    pub fn adjacency_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.edges() * std::mem::size_of::<u32>())
            .sum()
    }
}

/// A frozen single-layer graph (NSG / τ-MG shape) with a designated entry
/// (the medoid for NSG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatGraph {
    csr: CsrLayer,
    /// Search entry point.
    pub entry: u32,
}

impl FlatGraph {
    /// Freezes nested adjacency (`adj[node]`) into CSR.
    pub fn from_nested(adj: &[Vec<u32>], entry: u32) -> Self {
        Self {
            csr: CsrLayer::from_nested(adj),
            entry,
        }
    }

    /// The CSR adjacency.
    #[inline]
    pub fn csr(&self) -> &CsrLayer {
        &self.csr
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.csr.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.csr.is_empty()
    }

    /// Neighbor list of `node`.
    #[inline]
    pub fn neighbors(&self, node: u32) -> &[u32] {
        self.csr.neighbors(node as usize)
    }

    /// Total directed edges.
    pub fn edges(&self) -> usize {
        self.csr.edges()
    }

    /// Adjacency memory in bytes (ids only).
    pub fn adjacency_bytes(&self) -> usize {
        self.csr.edges() * std::mem::size_of::<u32>()
    }

    /// Thaws back into nested adjacency (tests, legacy interop).
    pub fn to_nested(&self) -> Vec<Vec<u32>> {
        self.csr.to_nested()
    }

    /// Checks every node can reach every other via BFS from `entry`
    /// (treating edges as directed). Returns the number of reachable nodes.
    pub fn reachable_from_entry(&self) -> usize {
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[self.entry as usize] = true;
        queue.push_back(self.entry);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> FlatGraph {
        FlatGraph::from_nested(&[vec![1], vec![2], vec![0]], 0)
    }

    #[test]
    fn flat_graph_accounting() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edges(), 3);
        assert_eq!(g.adjacency_bytes(), 12);
    }

    #[test]
    fn reachability_full_cycle() {
        assert_eq!(triangle().reachable_from_entry(), 3);
    }

    #[test]
    fn reachability_detects_islands() {
        let g = FlatGraph::from_nested(&[vec![1], vec![0], vec![]], 0);
        assert_eq!(g.reachable_from_entry(), 2);
    }

    #[test]
    fn layers_accounting() {
        let g = GraphLayers::from_nested(
            vec![
                vec![vec![1], vec![0], vec![0, 1]],
                vec![vec![], vec![], vec![]],
            ],
            2,
            0,
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g.base_edges(), 4);
        assert_eq!(g.adjacency_bytes(), 16);
        assert_eq!(g.neighbors(0, 2), &[0, 1]);
    }

    #[test]
    fn csr_rows_are_cache_line_aligned() {
        // 20 neighbors spill into a second line; the next row must start
        // fresh on a line boundary, not right after the 20th id.
        let long: Vec<u32> = (0..20).collect();
        let csr = CsrLayer::from_nested(&[long.clone(), vec![7, 8]]);
        assert_eq!(csr.neighbors(0), &long[..]);
        assert_eq!(csr.neighbors(1), &[7, 8]);
        for node in 0..csr.len() {
            let ptr = csr.neighbors(node).as_ptr() as usize;
            assert_eq!(ptr % 64, 0, "row {node} not 64-byte aligned");
        }
        assert_eq!(csr.edges(), 22);
    }

    #[test]
    fn csr_round_trips_empty_and_uneven_rows() {
        let nested = vec![vec![], vec![3, 1, 2], vec![], (0..16).collect(), vec![0]];
        let csr = CsrLayer::from_nested(&nested);
        assert_eq!(csr.to_nested(), nested);
        assert_eq!(csr.len(), 5);
        assert_eq!(csr.degree(0), 0);
        assert_eq!(csr.degree(3), 16);
    }

    #[test]
    fn csr_equality_is_logical() {
        let a = CsrLayer::from_nested(&[vec![1, 2], vec![]]);
        let b = CsrLayer::from_nested(&[vec![1, 2], vec![]]);
        let c = CsrLayer::from_nested(&[vec![2, 1], vec![]]);
        assert_eq!(a, b);
        assert_ne!(a, c, "order is part of the contract");
    }
}
