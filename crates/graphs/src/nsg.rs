//! NSG — the Navigating Spreading-out Graph (Fu et al., reproduced for the
//! paper's Figure 14 generality experiment).
//!
//! NSG builds a single-layer graph by pruning per-vertex candidate pools
//! with the MRNG rule and navigating from a medoid entry point. Its CA and
//! NS stages route through the same [`DistanceProvider`] as HNSW, so the
//! Flash provider accelerates NSG construction unchanged.

use crate::flat_build::{build_flat, search_flat, FlatParams, MrngRule};
use crate::graph::FlatGraph;
use crate::provider::DistanceProvider;
use crate::Hit;

/// NSG construction parameters.
pub type NsgParams = FlatParams;

/// A built NSG index.
pub struct Nsg<P: DistanceProvider> {
    provider: P,
    graph: FlatGraph,
    params: NsgParams,
}

impl<P: DistanceProvider> Nsg<P> {
    /// Builds the index (helper-HNSW CA, MRNG NS, connectivity repair).
    pub fn build(provider: P, params: NsgParams) -> Self {
        let (graph, provider) = build_flat(provider, params, &MrngRule);
        Self {
            provider,
            graph,
            params,
        }
    }

    /// The navigating graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }

    /// The distance provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Construction parameters.
    pub fn params(&self) -> &NsgParams {
        &self.params
    }

    /// k-NN search from the medoid.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        search_flat(&self.provider, &self.graph, query, k, ef)
    }

    /// Search with exact rerank on the original vectors.
    pub fn search_rerank(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        rerank_factor: usize,
    ) -> Vec<Hit> {
        let pool = self.search(query, (k * rerank_factor.max(1)).max(k), ef);
        crate::rerank_exact(self.provider.base(), query, pool, k)
    }

    /// Index size: adjacency + provider auxiliary bytes.
    pub fn index_bytes(&self) -> usize {
        self.graph.adjacency_bytes() + self.provider.aux_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    #[test]
    fn nsg_finds_nearest_on_grid() {
        let nsg = Nsg::build(
            FullPrecision::new(grid(10)),
            NsgParams {
                r: 8,
                c: 32,
                seed: 3,
            },
        );
        let hits = nsg.search(&[4.1, 6.2], 1, 32);
        assert_eq!(hits[0].id, 46);
    }

    #[test]
    fn nsg_is_fully_reachable() {
        let nsg = Nsg::build(
            FullPrecision::new(grid(9)),
            NsgParams {
                r: 6,
                c: 24,
                seed: 5,
            },
        );
        assert_eq!(nsg.graph().reachable_from_entry(), 81);
    }

    #[test]
    fn degrees_bounded_modulo_repair() {
        let nsg = Nsg::build(
            FullPrecision::new(grid(8)),
            NsgParams {
                r: 6,
                c: 24,
                seed: 7,
            },
        );
        // Connectivity repair may add a few extra edges beyond R.
        let g = nsg.graph();
        for node in 0..g.len() {
            let deg = g.neighbors(node as u32).len();
            assert!(deg <= 6 + 4, "degree {deg} too large");
        }
    }

    #[test]
    fn recall_reasonable_on_grid() {
        let base = grid(12);
        let nsg = Nsg::build(
            FullPrecision::new(base.clone()),
            NsgParams {
                r: 8,
                c: 48,
                seed: 9,
            },
        );
        let gt = vecstore::ground_truth(&base, &base.slice(0, 30), 3);
        let mut hit = 0;
        for (qi, truth) in gt.iter().enumerate() {
            let found = nsg.search(base.get(qi), 3, 48);
            let ids: Vec<u64> = found.iter().map(|r| r.id).collect();
            hit += truth
                .iter()
                .filter(|t| ids.contains(&u64::from(t.id)))
                .count();
        }
        let recall = hit as f64 / (30.0 * 3.0);
        assert!(recall > 0.9, "recall {recall}");
    }
}
