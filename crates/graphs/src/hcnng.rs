//! HCNNG — Hierarchical Clustering-based Nearest Neighbor Graph (Muñoz et
//! al., Pattern Recognition 2019), the MST-family builder the paper's
//! Section 2.1.1 lists alongside the MRNG-family graphs.
//!
//! HCNNG builds its graph from **minimum spanning trees over random
//! hierarchical clusterings**: each of `T` passes recursively bipartitions
//! the dataset with two random pivots until clusters fall below a leaf
//! size, computes a degree-bounded MST inside every leaf, and the union of
//! all trees' edges (made bidirectional) is the final graph. Unlike the
//! CA+NS family, there is no beam search during construction — but every
//! edge weight is still a distance computation, and those route through
//! [`DistanceProvider::dist_between`], so compact-coding providers (Flash
//! included) accelerate HCNNG construction too. This makes HCNNG a useful
//! *contrast* workload: its distance pattern is candidate-pool-free, so
//! layout-level optimizations (neighbor-codeword batches) do not apply and
//! only the cheap-distance effect remains.

use crate::flat_build::search_flat;
use crate::graph::FlatGraph;
use crate::provider::DistanceProvider;
use crate::Hit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// HCNNG construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct HcnngParams {
    /// Number of random clustering passes `T` (each contributes one forest).
    pub trees: usize,
    /// Maximum leaf size before an MST is computed.
    pub leaf_size: usize,
    /// Maximum degree a vertex may reach *within one tree's MST*
    /// (the original paper uses 3).
    pub mst_degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HcnngParams {
    fn default() -> Self {
        Self {
            trees: 10,
            leaf_size: 48,
            mst_degree: 3,
            seed: 0x5eed,
        }
    }
}

/// A built HCNNG index.
pub struct Hcnng<P: DistanceProvider> {
    provider: P,
    graph: FlatGraph,
    params: HcnngParams,
}

impl<P: DistanceProvider> Hcnng<P> {
    /// Builds the index: `T` parallel random clusterings, a degree-bounded
    /// MST per leaf, union of edges, medoid entry point.
    pub fn build(provider: P, params: HcnngParams) -> Self {
        assert!(params.trees >= 1, "at least one clustering pass required");
        assert!(params.leaf_size >= 2, "leaf size must allow an edge");
        assert!(params.mst_degree >= 1, "MST degree bound must be positive");
        let n = provider.len();
        if n == 0 {
            return Self {
                provider,
                graph: FlatGraph::from_nested(&[], 0),
                params,
            };
        }

        // Each pass produces its own edge list; passes are independent.
        let provider_ref = &provider;
        let forests: Vec<Vec<(u32, u32)>> = (0..params.trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(
                    params.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                let mut ids: Vec<u32> = (0..n as u32).collect();
                let mut edges = Vec::new();
                cluster_recurse(provider_ref, &mut ids, params, &mut rng, &mut edges);
                edges
            })
            .collect();

        // Union into bidirectional adjacency sets.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for edges in forests {
            for (a, b) in edges {
                if !adj[a as usize].contains(&b) {
                    adj[a as usize].push(b);
                }
                if !adj[b as usize].contains(&a) {
                    adj[b as usize].push(a);
                }
            }
        }

        // Medoid entry: vector nearest the dataset mean.
        let entry = {
            let base = provider.base();
            let dim = base.dim();
            let mut mean = vec![0.0f64; dim];
            for v in base.iter() {
                for (m, &x) in mean.iter_mut().zip(v.iter()) {
                    *m += f64::from(x);
                }
            }
            let mean_f32: Vec<f32> = mean.iter().map(|&m| (m / n as f64) as f32).collect();
            let ctx = provider.prepare_query(&mean_f32);
            (0..n as u32)
                .map(|i| (provider.dist_to(&ctx, i), i))
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .map(|(_, i)| i)
                .unwrap_or(0)
        };

        attach_unreachable(&mut adj, entry);
        Self {
            provider,
            graph: FlatGraph::from_nested(&adj, entry),
            params,
        }
    }

    /// The navigating graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }

    /// The distance provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Construction parameters.
    pub fn params(&self) -> &HcnngParams {
        &self.params
    }

    /// k-NN search from the medoid entry point.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        search_flat(&self.provider, &self.graph, query, k, ef)
    }

    /// Search with exact reranking on the original vectors.
    pub fn search_rerank(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        rerank_factor: usize,
    ) -> Vec<Hit> {
        let pool = self.search(query, (k * rerank_factor.max(1)).max(k), ef);
        crate::rerank_exact(self.provider.base(), query, pool, k)
    }

    /// Index size: adjacency + provider auxiliary bytes.
    pub fn index_bytes(&self) -> usize {
        self.graph.adjacency_bytes() + self.provider.aux_bytes()
    }
}

/// Recursively bipartitions `ids` with two random pivots; emits MST edges
/// at the leaves. Partitioning distances and MST weights both go through
/// the provider.
fn cluster_recurse<P: DistanceProvider>(
    provider: &P,
    ids: &mut [u32],
    params: HcnngParams,
    rng: &mut SmallRng,
    edges: &mut Vec<(u32, u32)>,
) {
    if ids.len() <= params.leaf_size {
        leaf_mst(provider, ids, params.mst_degree, edges);
        return;
    }
    // Two distinct random pivots.
    let pa = ids[rng.gen_range(0..ids.len())];
    let pb = loop {
        let c = ids[rng.gen_range(0..ids.len())];
        if c != pa {
            break c;
        }
    };
    // Partition in place: closer-to-pa first. Ties break by id parity so a
    // degenerate metric (all-equal points) still splits roughly in half.
    let mut left = 0usize;
    let mut right = ids.len();
    let mut i = 0usize;
    while i < right {
        let x = ids[i];
        let da = provider.dist_between(x, pa);
        let db = provider.dist_between(x, pb);
        let to_left = if da != db {
            da < db
        } else {
            x.is_multiple_of(2)
        };
        if to_left {
            ids.swap(i, left);
            left += 1;
            i = i.max(left);
        } else {
            right -= 1;
            ids.swap(i, right);
        }
    }
    // Guard against degenerate splits (all points identical to one pivot).
    if left == 0 || left == ids.len() {
        let mid = ids.len() / 2;
        let (a, b) = ids.split_at_mut(mid);
        cluster_recurse(provider, a, params, rng, edges);
        cluster_recurse(provider, b, params, rng, edges);
        return;
    }
    let (a, b) = ids.split_at_mut(left);
    cluster_recurse(provider, a, params, rng, edges);
    cluster_recurse(provider, b, params, rng, edges);
}

/// Degree-bounded MST inside one leaf: Kruskal over all pairwise edges,
/// accepting an edge only if both endpoints stay under the degree bound
/// and the edge merges two components.
fn leaf_mst<P: DistanceProvider>(
    provider: &P,
    ids: &[u32],
    max_degree: usize,
    edges: &mut Vec<(u32, u32)>,
) {
    let m = ids.len();
    if m < 2 {
        return;
    }
    let mut all: Vec<(f32, u32, u32)> = Vec::with_capacity(m * (m - 1) / 2);
    for i in 0..m {
        for j in (i + 1)..m {
            all.push((provider.dist_between(ids[i], ids[j]), ids[i], ids[j]));
        }
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    // Union-find over leaf-local indices.
    let index_of = |id: u32| ids.iter().position(|&x| x == id).unwrap();
    let mut parent: Vec<usize> = (0..m).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut degree = vec![0usize; m];
    let mut accepted = 0;
    for (_, a, b) in all {
        if accepted == m - 1 {
            break;
        }
        let (ia, ib) = (index_of(a), index_of(b));
        if degree[ia] >= max_degree || degree[ib] >= max_degree {
            continue;
        }
        let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
        if ra == rb {
            continue;
        }
        parent[ra] = rb;
        degree[ia] += 1;
        degree[ib] += 1;
        edges.push((a, b));
        accepted += 1;
    }
}

/// The degree bound can leave a leaf's forest (and hence the union graph)
/// disconnected; link any unreachable vertex from the entry.
fn attach_unreachable(adj: &mut [Vec<u32>], entry: u32) {
    let seen = crate::flat_build::reachable_mask(adj, entry);
    let orphans: Vec<usize> = seen
        .iter()
        .enumerate()
        .filter(|(_, &s)| !s)
        .map(|(x, _)| x)
        .collect();
    for x in orphans {
        adj[entry as usize].push(x as u32);
        adj[x].push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    fn build_grid(side: usize) -> Hcnng<FullPrecision> {
        Hcnng::build(
            FullPrecision::new(grid(side)),
            HcnngParams {
                trees: 6,
                leaf_size: 24,
                mst_degree: 3,
                seed: 13,
            },
        )
    }

    #[test]
    fn finds_nearest_on_grid() {
        let index = build_grid(10);
        let hits = index.search(&[7.1, 2.2], 1, 32);
        assert_eq!(hits[0].id, 72, "expected grid point (7,2)");
    }

    #[test]
    fn graph_is_bidirectional() {
        let index = build_grid(9);
        let g = index.graph();
        for u in 0..g.len() {
            for &v in g.neighbors(u as u32) {
                assert!(
                    g.neighbors(v).contains(&(u as u32)),
                    "edge {u}→{v} missing its reverse"
                );
            }
        }
    }

    #[test]
    fn fully_reachable() {
        let index = build_grid(9);
        assert_eq!(index.graph().reachable_from_entry(), 81);
    }

    #[test]
    fn more_trees_add_edges() {
        let base = grid(10);
        let few = Hcnng::build(
            FullPrecision::new(base.clone()),
            HcnngParams {
                trees: 2,
                leaf_size: 24,
                mst_degree: 3,
                seed: 1,
            },
        );
        let many = Hcnng::build(
            FullPrecision::new(base),
            HcnngParams {
                trees: 12,
                leaf_size: 24,
                mst_degree: 3,
                seed: 1,
            },
        );
        assert!(many.graph().edges() > few.graph().edges());
    }

    #[test]
    fn mst_degree_bound_respected_single_tree() {
        // With one tree and no repair edges, every vertex degree must be
        // ≤ mst_degree (union of passes may exceed it; one pass may not).
        let base = grid(8);
        let index = Hcnng::build(
            FullPrecision::new(base),
            HcnngParams {
                trees: 1,
                leaf_size: 64,
                mst_degree: 3,
                seed: 5,
            },
        );
        let g = index.graph();
        let entry = g.entry as usize;
        for i in 0..g.len() {
            if i == entry {
                continue; // connectivity repair may oversize the entry
            }
            let deg = g.neighbors(i as u32).len();
            assert!(deg <= 3 + 1, "degree {deg} at {i}");
        }
    }

    #[test]
    fn recall_reasonable_on_grid() {
        let base = grid(12);
        let index = Hcnng::build(
            FullPrecision::new(base.clone()),
            HcnngParams {
                trees: 8,
                leaf_size: 32,
                mst_degree: 3,
                seed: 9,
            },
        );
        let gt = vecstore::ground_truth(&base, &base.slice(0, 30), 3);
        let mut hit = 0;
        for (qi, truth) in gt.iter().enumerate() {
            let found = index.search(base.get(qi), 3, 64);
            let ids: Vec<u64> = found.iter().map(|r| r.id).collect();
            hit += truth
                .iter()
                .filter(|t| ids.contains(&u64::from(t.id)))
                .count();
        }
        let recall = hit as f64 / 90.0;
        assert!(recall > 0.85, "recall {recall}");
    }

    #[test]
    fn empty_and_single_vector() {
        let empty = Hcnng::build(
            FullPrecision::new(VectorSet::new(3)),
            HcnngParams::default(),
        );
        assert!(empty.search(&[0.0; 3], 2, 8).is_empty());

        let mut one = VectorSet::new(2);
        one.push(&[1.0, 2.0]);
        let index = Hcnng::build(FullPrecision::new(one), HcnngParams::default());
        assert_eq!(index.search(&[0.0, 0.0], 1, 4)[0].id, 0);
    }

    #[test]
    fn identical_points_do_not_hang() {
        // Degenerate metric: every point identical — the parity tiebreak
        // and the split guard must still terminate recursion.
        let mut s = VectorSet::new(2);
        for _ in 0..100 {
            s.push(&[1.0, 1.0]);
        }
        let index = Hcnng::build(
            FullPrecision::new(s),
            HcnngParams {
                trees: 2,
                leaf_size: 8,
                mst_degree: 3,
                seed: 3,
            },
        );
        assert_eq!(index.graph().len(), 100);
    }
}
