//! Attribute-constrained (hybrid) ANNS on HNSW.
//!
//! The paper's introduction motivates construction speed with hybrid
//! search: *"constructing a specialized HNSW index for
//! attribute-constrained ANNS takes 33× longer than a standard index"*.
//! This module reproduces the two standard deployment shapes so that the
//! cost amplification — and Flash's mitigation of it — can be measured:
//!
//! 1. **Shared graph, filtered search**: one index over all vectors;
//!    queries carry a predicate and only matching vertices enter the
//!    result set ([`crate::Hnsw::search_filtered`]). Construction cost is
//!    that of a single index, but low-selectivity predicates degrade both
//!    recall and QPS because the beam wades through rejected vertices.
//! 2. **Specialized per-label indexes** ([`LabeledHnsw`]): one sub-index
//!    per attribute value. Filtered queries become plain searches on the
//!    matching sub-index — fast and accurate — but construction cost
//!    multiplies with the number of labels, which is precisely the cost
//!    the paper says makes indexing time a user-facing metric. Because the
//!    sub-indexes are built through the same [`DistanceProvider`]
//!    machinery, a Flash factory accelerates the specialized build the
//!    same way it accelerates a standard one.

use crate::hnsw::{Hnsw, HnswParams};
use crate::provider::DistanceProvider;
use crate::Hit;
use vecstore::VectorSet;

/// Parameters of the per-label specialized build.
#[derive(Debug, Clone, Copy)]
pub struct LabeledParams {
    /// HNSW parameters applied to every sub-index.
    pub hnsw: HnswParams,
    /// Labels with fewer vectors than this are served by brute force
    /// instead of a graph (a graph over a handful of points is pure
    /// overhead).
    pub min_graph_size: usize,
}

impl Default for LabeledParams {
    fn default() -> Self {
        Self {
            hnsw: HnswParams::default(),
            min_graph_size: 32,
        }
    }
}

/// One per-label partition: the global ids it covers and either a graph
/// sub-index or a brute-force fallback for tiny partitions.
struct Partition<P: DistanceProvider> {
    label: u32,
    /// Global vector ids, in sub-index id order.
    ids: Vec<u32>,
    index: PartitionIndex<P>,
}

enum PartitionIndex<P: DistanceProvider> {
    Graph(Hnsw<P>),
    /// Tiny partitions keep raw vectors and scan them.
    Flat(VectorSet),
}

/// A specialized attribute-constrained index: one HNSW per label value.
pub struct LabeledHnsw<P: DistanceProvider> {
    partitions: Vec<Partition<P>>,
    params: LabeledParams,
}

impl<P: DistanceProvider> LabeledHnsw<P> {
    /// Builds one sub-index per distinct label. `labels[i]` is the label of
    /// `base` vector `i`; `factory` turns each label's vector subset into a
    /// provider (e.g. `FullPrecision::new` or a Flash factory), so the same
    /// build works for every coding method in the paper.
    pub fn build<F>(base: &VectorSet, labels: &[u32], params: LabeledParams, factory: F) -> Self
    where
        F: Fn(VectorSet) -> P,
    {
        assert_eq!(base.len(), labels.len(), "one label per vector required");
        let mut distinct: Vec<u32> = labels.to_vec();
        distinct.sort_unstable();
        distinct.dedup();

        let mut partitions = Vec::with_capacity(distinct.len());
        for label in distinct {
            let ids: Vec<u32> = (0..base.len() as u32)
                .filter(|&i| labels[i as usize] == label)
                .collect();
            let mut subset = VectorSet::with_capacity(base.dim(), ids.len());
            for &i in &ids {
                subset.push(base.get(i as usize));
            }
            let index = if ids.len() >= params.min_graph_size {
                PartitionIndex::Graph(Hnsw::build(factory(subset), params.hnsw))
            } else {
                PartitionIndex::Flat(subset)
            };
            partitions.push(Partition { label, ids, index });
        }
        Self { partitions, params }
    }

    /// Number of distinct labels / sub-indexes.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Vector dimensionality (0 when the index covers no vectors).
    pub fn dim(&self) -> usize {
        self.partitions.first().map_or(0, |p| match &p.index {
            PartitionIndex::Graph(h) => h.provider().base().dim(),
            PartitionIndex::Flat(v) => v.dim(),
        })
    }

    /// Total vectors across all partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.ids.len()).sum()
    }

    /// Whether the index covers no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The build parameters.
    pub fn params(&self) -> &LabeledParams {
        &self.params
    }

    /// Vectors carrying `label`.
    pub fn label_count(&self, label: u32) -> usize {
        self.partitions
            .iter()
            .find(|p| p.label == label)
            .map_or(0, |p| p.ids.len())
    }

    /// k-NN among vectors whose label equals `label`. Results carry
    /// *global* ids. Unknown labels return no hits.
    pub fn search(&self, query: &[f32], label: u32, k: usize, ef: usize) -> Vec<Hit> {
        let Some(part) = self.partitions.iter().find(|p| p.label == label) else {
            return Vec::new();
        };
        match &part.index {
            PartitionIndex::Graph(hnsw) => hnsw
                .search(query, k, ef)
                .into_iter()
                .map(|r| Hit {
                    id: u64::from(part.ids[r.id as usize]),
                    dist: r.dist,
                })
                .collect(),
            PartitionIndex::Flat(vectors) => {
                // Brute-force partition scan: one exact eval per vector.
                crate::scratch::profile_record(metrics::QueryProfile {
                    dist_exact: vectors.len() as u64,
                    ..metrics::QueryProfile::new()
                });
                let mut hits: Vec<Hit> = vectors
                    .iter()
                    .enumerate()
                    .map(|(i, v)| Hit {
                        id: u64::from(part.ids[i]),
                        dist: simdops::l2_sq(query, v),
                    })
                    .collect();
                hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
                hits.truncate(k);
                hits
            }
        }
    }

    /// Total index size across partitions (adjacency + provider bytes for
    /// graph partitions; raw vector bytes for flat ones).
    pub fn index_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| match &p.index {
                PartitionIndex::Graph(h) => h.index_bytes(),
                PartitionIndex::Flat(v) => v.payload_bytes(),
            } + p.ids.len() * std::mem::size_of::<u32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::FullPrecision;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Two labeled clusters far apart: label 0 near the origin, label 1
    /// shifted by +100 on every axis.
    fn labeled_clusters(n_per: usize, dim: usize, seed: u64) -> (VectorSet, Vec<u32>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut base = VectorSet::with_capacity(dim, n_per * 2);
        let mut labels = Vec::with_capacity(n_per * 2);
        for label in 0..2u32 {
            let shift = label as f32 * 100.0;
            for _ in 0..n_per {
                let v: Vec<f32> = (0..dim).map(|_| shift + rng.gen_range(-1.0..1.0)).collect();
                base.push(&v);
                labels.push(label);
            }
        }
        (base, labels)
    }

    #[test]
    fn per_label_search_respects_label() {
        let (base, labels) = labeled_clusters(100, 4, 1);
        let index = LabeledHnsw::build(
            &base,
            &labels,
            LabeledParams {
                hnsw: HnswParams {
                    c: 48,
                    r: 8,
                    seed: 2,
                },
                min_graph_size: 16,
            },
            FullPrecision::new,
        );
        // Query near cluster 1's center but constrained to label 0 must
        // return label-0 vectors (global ids < 100).
        let q = vec![100.0; 4];
        for hit in index.search(&q, 0, 5, 32) {
            assert!(hit.id < 100, "label-0 search returned global id {}", hit.id);
        }
    }

    #[test]
    fn unknown_label_returns_empty() {
        let (base, labels) = labeled_clusters(40, 4, 3);
        let index =
            LabeledHnsw::build(&base, &labels, LabeledParams::default(), FullPrecision::new);
        assert!(index.search(&[0.0; 4], 99, 3, 16).is_empty());
    }

    #[test]
    fn tiny_partition_falls_back_to_flat_scan() {
        let mut base = VectorSet::new(2);
        let mut labels = Vec::new();
        // Label 0: 50 points; label 1: only 3 points.
        for i in 0..50 {
            base.push(&[i as f32, 0.0]);
            labels.push(0);
        }
        for i in 0..3 {
            base.push(&[i as f32, 50.0]);
            labels.push(1);
        }
        let index = LabeledHnsw::build(
            &base,
            &labels,
            LabeledParams {
                hnsw: HnswParams {
                    c: 32,
                    r: 8,
                    seed: 4,
                },
                min_graph_size: 10,
            },
            FullPrecision::new,
        );
        let hits = index.search(&[1.2, 50.0], 1, 1, 8);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 51, "expected the label-1 point (1, 50)");
    }

    #[test]
    fn global_ids_round_trip() {
        let (base, labels) = labeled_clusters(60, 4, 7);
        let index = LabeledHnsw::build(
            &base,
            &labels,
            LabeledParams {
                hnsw: HnswParams {
                    c: 48,
                    r: 8,
                    seed: 5,
                },
                min_graph_size: 16,
            },
            FullPrecision::new,
        );
        // Querying with an exact database vector must return its global id.
        let probe = 90usize; // a label-1 vector (global ids 60..120)
        let hits = index.search(base.get(probe), 1, 1, 32);
        assert_eq!(hits[0].id, probe as u64);
        assert!(hits[0].dist < 1e-6);
    }

    #[test]
    fn accounting_counts_all_partitions() {
        let (base, labels) = labeled_clusters(50, 4, 9);
        let index =
            LabeledHnsw::build(&base, &labels, LabeledParams::default(), FullPrecision::new);
        assert_eq!(index.partitions(), 2);
        assert_eq!(index.len(), 100);
        assert_eq!(index.label_count(0), 50);
        assert_eq!(index.label_count(1), 50);
        assert_eq!(index.label_count(9), 0);
        assert!(index.index_bytes() > 0);
    }

    #[test]
    fn filtered_search_on_shared_graph_respects_predicate() {
        let (base, labels) = labeled_clusters(80, 4, 11);
        let shared = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 6,
            },
        );
        let labels_ref = &labels;
        let accept = move |id: u32| labels_ref[id as usize] == 1;
        let q = vec![0.0; 4]; // near cluster 0 — the filter must push results to cluster 1
        let hits = shared.search_filtered(&q, 5, 64, &accept);
        assert!(!hits.is_empty());
        for hit in &hits {
            assert_eq!(
                labels[hit.id as usize], 1,
                "predicate violated for id {}",
                hit.id
            );
        }
    }

    #[test]
    fn filtered_search_matches_exact_filtered_ground_truth() {
        let (base, labels) = labeled_clusters(100, 4, 13);
        let shared = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 64,
                r: 8,
                seed: 8,
            },
        );
        let labels_ref = &labels;
        let accept = move |id: u32| labels_ref[id as usize] == 0;
        let q: Vec<f32> = vec![0.5; 4];
        let hits = shared.search_filtered(&q, 3, 96, &accept);
        // Exact filtered ground truth by linear scan.
        let mut exact: Vec<(f32, u32)> = (0..base.len())
            .filter(|&i| labels[i] == 0)
            .map(|i| (simdops::l2_sq(&q, base.get(i)), i as u32))
            .collect();
        exact.sort_by(|a, b| a.0.total_cmp(&b.0));
        let top: Vec<u32> = exact.iter().take(3).map(|&(_, i)| i).collect();
        let got: Vec<u64> = hits.iter().map(|h| h.id).collect();
        let overlap = got.iter().filter(|&&id| top.contains(&(id as u32))).count();
        assert!(overlap >= 2, "filtered recall too low: {got:?} vs {top:?}");
    }
}
