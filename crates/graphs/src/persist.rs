//! Binary persistence for frozen graphs.
//!
//! The paper's motivating deployment rebuilds indexes overnight and serves
//! them immediately after; that requires writing the built topology to disk
//! and mapping it back without re-running construction. This module gives
//! [`GraphLayers`] and [`FlatGraph`] a compact little-endian on-disk format
//! (magic + version + adjacency), dependency-free.
//!
//! Vector data and codec state are *not* stored here: providers re-derive
//! them from the dataset (codes re-encode deterministically from the same
//! codec seed), matching how segment files and index files are managed
//! separately in LSM-style vector stores.

use crate::graph::{FlatGraph, GraphLayers};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HFGRAPH1";

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn write_adjacency(w: &mut impl Write, adj: &[Vec<u32>]) -> io::Result<()> {
    write_u32(w, adj.len() as u32)?;
    for list in adj {
        write_u32(w, list.len() as u32)?;
        for &id in list {
            write_u32(w, id)?;
        }
    }
    Ok(())
}

fn read_adjacency(r: &mut impl Read, max_id: u32) -> io::Result<Vec<Vec<u32>>> {
    let n = read_u32(r)? as usize;
    let mut adj = Vec::with_capacity(n);
    for _ in 0..n {
        let len = read_u32(r)? as usize;
        if len > max_id as usize {
            return Err(bad("neighbor list longer than the graph"));
        }
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let id = read_u32(r)?;
            if id >= max_id {
                return Err(bad("edge target out of range"));
            }
            list.push(id);
        }
        adj.push(list);
    }
    Ok(adj)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl GraphLayers {
    /// Serializes the multi-layer graph to `path`.
    ///
    /// # Errors
    /// Returns any underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(b"ML")?;
        write_u32(&mut w, self.entry)?;
        write_u32(&mut w, self.max_layer as u32)?;
        write_u32(&mut w, self.layers.len() as u32)?;
        for layer in &self.layers {
            write_adjacency(&mut w, layer)?;
        }
        w.flush()
    }

    /// Loads a multi-layer graph from `path`, validating the header and all
    /// edge targets.
    ///
    /// # Errors
    /// Returns an error on I/O failure or a malformed/corrupt file.
    pub fn load(path: &Path) -> io::Result<GraphLayers> {
        let mut r = BufReader::new(File::open(path)?);
        let mut header = [0u8; 10];
        r.read_exact(&mut header)?;
        if &header[..8] != MAGIC || &header[8..] != b"ML" {
            return Err(bad("not a multi-layer graph file"));
        }
        let entry = read_u32(&mut r)?;
        let max_layer = read_u32(&mut r)? as usize;
        let n_layers = read_u32(&mut r)? as usize;
        if n_layers == 0 || max_layer >= n_layers {
            return Err(bad("inconsistent layer header"));
        }
        let mut layers = Vec::with_capacity(n_layers);
        let mut n_nodes = u32::MAX;
        for _ in 0..n_layers {
            let layer = read_adjacency(&mut r, n_nodes)?;
            if n_nodes == u32::MAX {
                n_nodes = layer.len() as u32; // base layer defines the node count
                if entry >= n_nodes {
                    return Err(bad("entry point out of range"));
                }
                // Re-validate base-layer edges against the real bound.
                for list in &layer {
                    if list.iter().any(|&id| id >= n_nodes) {
                        return Err(bad("edge target out of range"));
                    }
                }
            } else if layer.len() as u32 != n_nodes {
                return Err(bad("layer node counts differ"));
            }
            layers.push(layer);
        }
        Ok(GraphLayers {
            layers,
            entry,
            max_layer,
        })
    }
}

impl FlatGraph {
    /// Serializes the flat graph to `path`.
    ///
    /// # Errors
    /// Returns any underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(b"FL")?;
        write_u32(&mut w, self.entry)?;
        write_adjacency(&mut w, &self.adj)?;
        w.flush()
    }

    /// Loads a flat graph from `path`.
    ///
    /// # Errors
    /// Returns an error on I/O failure or a malformed/corrupt file.
    pub fn load(path: &Path) -> io::Result<FlatGraph> {
        let mut r = BufReader::new(File::open(path)?);
        let mut header = [0u8; 10];
        r.read_exact(&mut header)?;
        if &header[..8] != MAGIC || &header[8..] != b"FL" {
            return Err(bad("not a flat graph file"));
        }
        let entry = read_u32(&mut r)?;
        let adj = read_adjacency(&mut r, u32::MAX)?;
        let n = adj.len() as u32;
        if entry >= n {
            return Err(bad("entry point out of range"));
        }
        for list in &adj {
            if list.iter().any(|&id| id >= n) {
                return Err(bad("edge target out of range"));
            }
        }
        Ok(FlatGraph { adj, entry })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hnsw_flash_persist_{}_{name}", std::process::id()));
        p
    }

    fn sample_layers() -> GraphLayers {
        GraphLayers {
            layers: vec![
                vec![vec![1, 2], vec![0], vec![0, 1]],
                vec![vec![], vec![2], vec![1]],
            ],
            entry: 2,
            max_layer: 1,
        }
    }

    #[test]
    fn layers_roundtrip() {
        let path = tmp("a.graph");
        let g = sample_layers();
        g.save(&path).unwrap();
        let back = GraphLayers::load(&path).unwrap();
        assert_eq!(back.entry, g.entry);
        assert_eq!(back.max_layer, g.max_layer);
        assert_eq!(back.layers, g.layers);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_roundtrip() {
        let path = tmp("b.graph");
        let g = FlatGraph {
            adj: vec![vec![1], vec![2, 0], vec![]],
            entry: 1,
        };
        g.save(&path).unwrap();
        let back = FlatGraph::load(&path).unwrap();
        assert_eq!(back.adj, g.adj);
        assert_eq!(back.entry, g.entry);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("c.graph");
        std::fs::write(&path, b"NOTAGRAPHFILE").unwrap();
        assert!(GraphLayers::load(&path).is_err());
        assert!(FlatGraph::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_type_confusion() {
        let path = tmp("d.graph");
        sample_layers().save(&path).unwrap();
        assert!(
            FlatGraph::load(&path).is_err(),
            "ML file must not load as FL"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let path = tmp("e.graph");
        // Hand-craft a flat file with an edge to node 9 in a 2-node graph.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(b"FL");
        bytes.extend_from_slice(&0u32.to_le_bytes()); // entry
        bytes.extend_from_slice(&2u32.to_le_bytes()); // n
        bytes.extend_from_slice(&1u32.to_le_bytes()); // len of list 0
        bytes.extend_from_slice(&9u32.to_le_bytes()); // bad edge
        bytes.extend_from_slice(&0u32.to_le_bytes()); // len of list 1
        std::fs::write(&path, &bytes).unwrap();
        assert!(FlatGraph::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_an_error() {
        let path = tmp("f.graph");
        sample_layers().save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(GraphLayers::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
