//! Binary persistence for frozen graphs.
//!
//! The paper's motivating deployment rebuilds indexes overnight and serves
//! them immediately after; that requires writing the built topology to disk
//! and mapping it back without re-running construction. This module gives
//! [`GraphLayers`] and [`FlatGraph`] a compact little-endian on-disk format
//! (magic + version + adjacency), dependency-free.
//!
//! Two format versions exist. `HFGRAPH1` (legacy) stored nested adjacency
//! as per-list `len, ids...` records; `HFGRAPH2` mirrors the in-memory CSR
//! layout — node count, the degree array, then all targets concatenated —
//! so a load is two bulk reads per layer instead of `n` length-prefixed
//! ones. Writers emit v2; readers accept both.
//!
//! Length words come straight from the (possibly corrupt or hostile) file,
//! so no allocation trusts them: preallocation is capped at
//! [`PREALLOC_CAP`] elements and vectors grow incrementally past it,
//! meaning a forged multi-GB header fails with a clean read error instead
//! of an out-of-memory abort.
//!
//! Vector data and codec state are *not* stored here: providers re-derive
//! them from the dataset (codes re-encode deterministically from the same
//! codec seed), matching how segment files and index files are managed
//! separately in LSM-style vector stores.

use crate::graph::{FlatGraph, GraphLayers};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Legacy nested format (read-only since the CSR refactor).
const MAGIC_V1: &[u8; 8] = b"HFGRAPH1";
/// Current CSR format.
const MAGIC_V2: &[u8; 8] = b"HFGRAPH2";

/// Ceiling on elements preallocated from an untrusted length word.
const PREALLOC_CAP: usize = 1 << 16;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// `Vec::with_capacity` that refuses to trust an untrusted length word
/// beyond [`PREALLOC_CAP`]; pushes past the cap just grow normally.
fn bounded_vec<T>(claimed_len: usize) -> Vec<T> {
    Vec::with_capacity(claimed_len.min(PREALLOC_CAP))
}

/// Writes one layer in CSR shape: `n`, the `n` degrees, then all targets
/// row-concatenated (no padding on disk).
fn write_csr_adjacency(w: &mut impl Write, rows: &crate::graph::CsrLayer) -> io::Result<()> {
    write_u32(w, rows.len() as u32)?;
    for node in 0..rows.len() {
        write_u32(w, rows.degree(node) as u32)?;
    }
    for row in rows.rows() {
        for &id in row {
            write_u32(w, id)?;
        }
    }
    Ok(())
}

/// Reads one v2 (CSR-shaped) layer back into nested lists (frozen to CSR
/// by the caller). Every edge target is validated against `max_id`.
fn read_csr_adjacency(r: &mut impl Read, max_id: u32) -> io::Result<Vec<Vec<u32>>> {
    let n = read_u32(r)? as usize;
    let mut lens: Vec<usize> = bounded_vec(n);
    for _ in 0..n {
        let len = read_u32(r)? as usize;
        if len > max_id as usize {
            return Err(bad("neighbor list longer than the graph"));
        }
        lens.push(len);
    }
    let mut adj: Vec<Vec<u32>> = bounded_vec(n);
    for &len in &lens {
        let mut list = bounded_vec(len);
        for _ in 0..len {
            let id = read_u32(r)?;
            if id >= max_id {
                return Err(bad("edge target out of range"));
            }
            list.push(id);
        }
        adj.push(list);
    }
    Ok(adj)
}

/// Reads one legacy v1 (nested) layer: per-list `len, ids...` records.
fn read_nested_adjacency(r: &mut impl Read, max_id: u32) -> io::Result<Vec<Vec<u32>>> {
    let n = read_u32(r)? as usize;
    let mut adj = bounded_vec(n);
    for _ in 0..n {
        let len = read_u32(r)? as usize;
        if len > max_id as usize {
            return Err(bad("neighbor list longer than the graph"));
        }
        let mut list = bounded_vec(len);
        for _ in 0..len {
            let id = read_u32(r)?;
            if id >= max_id {
                return Err(bad("edge target out of range"));
            }
            list.push(id);
        }
        adj.push(list);
    }
    Ok(adj)
}

/// On-disk format version, decided by the magic bytes.
#[derive(Clone, Copy, PartialEq)]
enum Version {
    V1,
    V2,
}

fn read_magic(r: &mut impl Read) -> io::Result<Version> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    match &magic {
        m if m == MAGIC_V1 => Ok(Version::V1),
        m if m == MAGIC_V2 => Ok(Version::V2),
        _ => Err(bad("not a graph file (bad magic)")),
    }
}

fn read_layer(r: &mut impl Read, version: Version, max_id: u32) -> io::Result<Vec<Vec<u32>>> {
    match version {
        Version::V1 => read_nested_adjacency(r, max_id),
        Version::V2 => read_csr_adjacency(r, max_id),
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl GraphLayers {
    /// Serializes the multi-layer graph to `path` (current format).
    ///
    /// # Errors
    /// Returns any underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC_V2)?;
        w.write_all(b"ML")?;
        write_u32(&mut w, self.entry)?;
        write_u32(&mut w, self.max_layer as u32)?;
        write_u32(&mut w, self.num_layers() as u32)?;
        for l in 0..self.num_layers() {
            write_csr_adjacency(&mut w, self.layer(l))?;
        }
        w.flush()
    }

    /// Loads a multi-layer graph from `path` (either format version),
    /// validating the header and all edge targets.
    ///
    /// # Errors
    /// Returns an error on I/O failure or a malformed/corrupt file.
    pub fn load(path: &Path) -> io::Result<GraphLayers> {
        let mut r = BufReader::new(File::open(path)?);
        let version = read_magic(&mut r)?;
        let mut kind = [0u8; 2];
        r.read_exact(&mut kind)?;
        if &kind != b"ML" {
            return Err(bad("not a multi-layer graph file"));
        }
        let entry = read_u32(&mut r)?;
        let max_layer = read_u32(&mut r)? as usize;
        let n_layers = read_u32(&mut r)? as usize;
        if n_layers == 0 || max_layer >= n_layers {
            return Err(bad("inconsistent layer header"));
        }
        let mut layers = bounded_vec(n_layers);
        let mut n_nodes = u32::MAX;
        for _ in 0..n_layers {
            let layer = read_layer(&mut r, version, n_nodes)?;
            if n_nodes == u32::MAX {
                n_nodes = layer.len() as u32; // base layer defines the node count
                if entry >= n_nodes {
                    return Err(bad("entry point out of range"));
                }
                // Re-validate base-layer edges against the real bound.
                for list in &layer {
                    if list.iter().any(|&id| id >= n_nodes) {
                        return Err(bad("edge target out of range"));
                    }
                }
            } else if layer.len() as u32 != n_nodes {
                return Err(bad("layer node counts differ"));
            }
            layers.push(layer);
        }
        Ok(GraphLayers::from_nested(layers, entry, max_layer))
    }
}

impl FlatGraph {
    /// Serializes the flat graph to `path` (current format).
    ///
    /// # Errors
    /// Returns any underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC_V2)?;
        w.write_all(b"FL")?;
        write_u32(&mut w, self.entry)?;
        write_csr_adjacency(&mut w, self.csr())?;
        w.flush()
    }

    /// Loads a flat graph from `path` (either format version).
    ///
    /// # Errors
    /// Returns an error on I/O failure or a malformed/corrupt file.
    pub fn load(path: &Path) -> io::Result<FlatGraph> {
        let mut r = BufReader::new(File::open(path)?);
        let version = read_magic(&mut r)?;
        let mut kind = [0u8; 2];
        r.read_exact(&mut kind)?;
        if &kind != b"FL" {
            return Err(bad("not a flat graph file"));
        }
        let entry = read_u32(&mut r)?;
        let adj = read_layer(&mut r, version, u32::MAX)?;
        let n = adj.len() as u32;
        if entry >= n {
            return Err(bad("entry point out of range"));
        }
        for list in &adj {
            if list.iter().any(|&id| id >= n) {
                return Err(bad("edge target out of range"));
            }
        }
        Ok(FlatGraph::from_nested(&adj, entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hnsw_flash_persist_{}_{name}", std::process::id()));
        p
    }

    fn sample_layers() -> GraphLayers {
        GraphLayers::from_nested(
            vec![
                vec![vec![1, 2], vec![0], vec![0, 1]],
                vec![vec![], vec![2], vec![1]],
            ],
            2,
            1,
        )
    }

    /// Writes `adj` in the retired v1 nested format (the pre-CSR writer).
    fn v1_flat_bytes(entry: u32, adj: &[Vec<u32>]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(b"FL");
        bytes.extend_from_slice(&entry.to_le_bytes());
        bytes.extend_from_slice(&(adj.len() as u32).to_le_bytes());
        for list in adj {
            bytes.extend_from_slice(&(list.len() as u32).to_le_bytes());
            for &id in list {
                bytes.extend_from_slice(&id.to_le_bytes());
            }
        }
        bytes
    }

    #[test]
    fn layers_roundtrip() {
        let path = tmp("a.graph");
        let g = sample_layers();
        g.save(&path).unwrap();
        let back = GraphLayers::load(&path).unwrap();
        assert_eq!(back.entry, g.entry);
        assert_eq!(back.max_layer, g.max_layer);
        assert_eq!(back, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_roundtrip() {
        let path = tmp("b.graph");
        let g = FlatGraph::from_nested(&[vec![1], vec![2, 0], vec![]], 1);
        g.save(&path).unwrap();
        let back = FlatGraph::load(&path).unwrap();
        assert_eq!(back, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let path = tmp("v1.graph");
        let adj = vec![vec![1u32, 2], vec![0], vec![]];
        std::fs::write(&path, v1_flat_bytes(2, &adj)).unwrap();
        let back = FlatGraph::load(&path).unwrap();
        assert_eq!(back, FlatGraph::from_nested(&adj, 2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_layers_roundtrip_through_v2() {
        // v1 bytes → CSR in memory → v2 bytes → identical graph.
        let path_v1 = tmp("v1ml.graph");
        let layers = vec![
            vec![vec![1u32], vec![0], vec![0, 1]],
            vec![vec![], vec![2], vec![]],
        ];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(b"ML");
        bytes.extend_from_slice(&2u32.to_le_bytes()); // entry
        bytes.extend_from_slice(&1u32.to_le_bytes()); // max_layer
        bytes.extend_from_slice(&(layers.len() as u32).to_le_bytes());
        for layer in &layers {
            bytes.extend_from_slice(&(layer.len() as u32).to_le_bytes());
            for list in layer {
                bytes.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for &id in list {
                    bytes.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        std::fs::write(&path_v1, &bytes).unwrap();
        let g = GraphLayers::load(&path_v1).unwrap();
        assert_eq!(g, GraphLayers::from_nested(layers, 2, 1));

        let path_v2 = tmp("v1ml_rewritten.graph");
        g.save(&path_v2).unwrap();
        assert_eq!(GraphLayers::load(&path_v2).unwrap(), g);
        std::fs::remove_file(&path_v1).ok();
        std::fs::remove_file(&path_v2).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("c.graph");
        std::fs::write(&path, b"NOTAGRAPHFILE").unwrap();
        assert!(GraphLayers::load(&path).is_err());
        assert!(FlatGraph::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_type_confusion() {
        let path = tmp("d.graph");
        sample_layers().save(&path).unwrap();
        assert!(
            FlatGraph::load(&path).is_err(),
            "ML file must not load as FL"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let path = tmp("e.graph");
        // Hand-craft a legacy flat file with an edge to node 9 in a 2-node
        // graph; the v1 read path must still validate targets.
        let bytes = v1_flat_bytes(0, &[vec![9], vec![]]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(FlatGraph::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_an_error() {
        let path = tmp("f.graph");
        sample_layers().save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(GraphLayers::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forged_huge_node_count_fails_without_oom() {
        // A 22-byte file claiming u32::MAX nodes: the reader must hit EOF
        // with a clean error instead of preallocating gigabytes.
        for magic in [MAGIC_V1, MAGIC_V2] {
            let path = tmp("g.graph");
            let mut bytes = Vec::new();
            bytes.extend_from_slice(magic);
            bytes.extend_from_slice(b"FL");
            bytes.extend_from_slice(&0u32.to_le_bytes()); // entry
            bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // forged n
            bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // forged len
            std::fs::write(&path, &bytes).unwrap();
            let err = FlatGraph::load(&path).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ),
                "unexpected error kind {:?}",
                err.kind()
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn forged_huge_layer_count_fails_without_oom() {
        let path = tmp("h.graph");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        bytes.extend_from_slice(b"ML");
        bytes.extend_from_slice(&0u32.to_le_bytes()); // entry
        bytes.extend_from_slice(&0u32.to_le_bytes()); // max_layer
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // forged n_layers
        std::fs::write(&path, &bytes).unwrap();
        assert!(GraphLayers::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
