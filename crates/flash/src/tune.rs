//! The paper's Section 3.1 parameter-tuning procedure, automated.
//!
//! *"A random sample of vectors is drawn from the dataset, and each
//! vector's top nearest neighbors are determined, forming a triple
//! (u, v, w) … By tuning the parameters, one can maximize the proportion
//! of triples that satisfy |e·u − b| ≥ |E| while minimizing the vector
//! size."*
//!
//! [`tune_flash_params`] runs that loop over a candidate grid of
//! `(d_F, M_F)` pairs: each candidate trains a codec on the sample,
//! measures its comparison reliability with the Theorem-1 estimator, and
//! the cheapest candidate whose *measured agreement* reaches the target
//! wins. Ties in code size prefer smaller `d_F` (cheaper training and
//! encoding). If nothing reaches the target, the most reliable candidate
//! is returned with `met_target = false` so callers can decide whether to
//! proceed or widen the grid.

use crate::codec::{FlashCodec, FlashParams};
use quantizers::{comparison_reliability, ReliabilityReport};
use vecstore::VectorSet;

/// Search space and acceptance criteria for [`tune_flash_params`].
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Candidate principal-component counts (filtered to `≤ dim`).
    pub d_f_grid: Vec<usize>,
    /// Candidate subspace counts (filtered to divisors of the paired `d_F`).
    pub m_f_grid: Vec<usize>,
    /// Required fraction of sampled triples whose comparison survives
    /// compression (the paper tunes until comparisons are "effectively"
    /// preserved; 0.9 is a practical default).
    pub target_agreement: f64,
    /// Triples sampled per candidate.
    pub triples: usize,
    /// Vectors sampled from the dataset for training + estimation.
    pub sample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            d_f_grid: vec![16, 32, 48, 64, 96, 128],
            m_f_grid: vec![4, 8, 16, 32],
            target_agreement: 0.9,
            triples: 400,
            sample: 2_000,
            seed: 0x7E57,
        }
    }
}

/// One evaluated candidate configuration.
#[derive(Debug, Clone, Copy)]
pub struct TuneCandidate {
    /// Principal components kept.
    pub d_f: usize,
    /// Subspaces (= stored code bytes per vector, one nibble-per-byte).
    pub m_f: usize,
    /// The Theorem-1 estimator's verdict for this configuration.
    pub report: ReliabilityReport,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The chosen parameters (other fields copied from the base params).
    pub params: FlashParams,
    /// Whether the chosen candidate reached `target_agreement`.
    pub met_target: bool,
    /// Every evaluated candidate, in evaluation order (cheapest first).
    pub candidates: Vec<TuneCandidate>,
}

/// Runs the Section-3.1 tuning loop over `data`.
///
/// `base` supplies the non-tuned fields (training sample size, k-means
/// iterations, seed, grid quantile); its `d_f`/`m_f` are ignored.
///
/// # Panics
/// Panics if `data` has fewer than 3 vectors (no triples can be formed)
/// or the filtered grid is empty.
pub fn tune_flash_params(data: &VectorSet, base: FlashParams, opts: &TuneOptions) -> TuneOutcome {
    assert!(data.len() >= 3, "tuning needs at least 3 vectors");
    let dim = data.dim();
    let sample = data.stride_sample(opts.sample.max(3));

    // Candidate grid: valid pairs sorted cheapest-first (code bytes = M_F,
    // then d_F for training cost).
    let mut grid: Vec<(usize, usize)> = Vec::new();
    for &m_f in &opts.m_f_grid {
        for &d_f in &opts.d_f_grid {
            if d_f <= dim && m_f <= d_f && d_f % m_f == 0 {
                grid.push((m_f, d_f));
            }
        }
    }
    grid.sort_unstable();
    grid.dedup();
    assert!(
        !grid.is_empty(),
        "no valid (d_F, M_F) candidates for dim {dim}"
    );

    let mut candidates = Vec::with_capacity(grid.len());
    let mut chosen: Option<(usize, usize)> = None;
    let mut best_fallback: Option<((usize, usize), f64)> = None;

    for &(m_f, d_f) in &grid {
        let mut params = base;
        params.d_f = d_f;
        params.m_f = m_f;
        params.train_sample = params.train_sample.min(sample.len()).max(3);
        let codec = FlashCodec::train(&sample, params);
        let report = comparison_reliability(&codec, &sample, opts.triples, opts.seed);
        candidates.push(TuneCandidate { d_f, m_f, report });

        let agreement = report.agreement_fraction();
        if chosen.is_none() && agreement >= opts.target_agreement {
            chosen = Some((m_f, d_f));
        }
        if best_fallback.is_none_or(|(_, best)| agreement > best) {
            best_fallback = Some(((m_f, d_f), agreement));
        }
    }

    let (met_target, (m_f, d_f)) = match chosen {
        Some(pair) => (true, pair),
        None => (false, best_fallback.expect("grid is non-empty").0),
    };
    let mut params = base;
    params.d_f = d_f;
    params.m_f = m_f;
    TuneOutcome {
        params,
        met_target,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::{generate, DatasetProfile};

    fn opts_small() -> TuneOptions {
        TuneOptions {
            d_f_grid: vec![16, 32, 64],
            m_f_grid: vec![4, 8, 16],
            target_agreement: 0.8,
            triples: 150,
            sample: 600,
            seed: 7,
        }
    }

    #[test]
    fn picks_a_valid_candidate_meeting_target() {
        let (data, _) = generate(&DatasetProfile::SsnppLike.spec(), 800, 1, 3);
        let outcome = tune_flash_params(&data, FlashParams::auto(256), &opts_small());
        assert!(outcome.params.d_f.is_multiple_of(outcome.params.m_f));
        assert!(outcome.params.d_f <= 256);
        assert!(!outcome.candidates.is_empty());
        // Well-structured embedding-like data should be tunable to 0.8
        // (0.85 sits inside the sampling noise of 150 triples).
        assert!(outcome.met_target, "no candidate reached the target");
    }

    #[test]
    fn chosen_candidate_is_cheapest_qualifying() {
        let (data, _) = generate(&DatasetProfile::SsnppLike.spec(), 800, 1, 5);
        let opts = opts_small();
        let outcome = tune_flash_params(&data, FlashParams::auto(256), &opts);
        if outcome.met_target {
            // No *cheaper* candidate (fewer code bytes, i.e. smaller m_f;
            // then smaller d_f) may also meet the target.
            let chosen = (outcome.params.m_f, outcome.params.d_f);
            for c in &outcome.candidates {
                let key = (c.m_f, c.d_f);
                if key < chosen {
                    assert!(
                        c.report.agreement_fraction() < opts.target_agreement,
                        "cheaper qualifying candidate {key:?} was skipped"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_filters_invalid_pairs() {
        let (data, _) = generate(&DatasetProfile::SsnppLike.spec(), 400, 1, 9);
        let opts = TuneOptions {
            d_f_grid: vec![24, 512], // 512 > dim 256: filtered
            m_f_grid: vec![8, 48],   // 48 > 24: filtered; 24 % 8 == 0 stays
            target_agreement: 0.0,
            triples: 50,
            sample: 300,
            seed: 1,
        };
        let outcome = tune_flash_params(&data, FlashParams::auto(256), &opts);
        assert_eq!(outcome.candidates.len(), 1);
        assert_eq!(outcome.params.d_f, 24);
        assert_eq!(outcome.params.m_f, 8);
    }

    #[test]
    fn unreachable_target_falls_back_to_best() {
        let (data, _) = generate(&DatasetProfile::SsnppLike.spec(), 500, 1, 11);
        let mut opts = opts_small();
        opts.target_agreement = 1.01; // unsatisfiable by construction
        let outcome = tune_flash_params(&data, FlashParams::auto(256), &opts);
        assert!(!outcome.met_target);
        let best = outcome
            .candidates
            .iter()
            .map(|c| c.report.agreement_fraction())
            .fold(0.0f64, f64::max);
        let chosen = outcome
            .candidates
            .iter()
            .find(|c| c.d_f == outcome.params.d_f && c.m_f == outcome.params.m_f)
            .unwrap();
        assert!(
            (chosen.report.agreement_fraction() - best).abs() < 1e-12,
            "fallback must be the most reliable candidate"
        );
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_vectors_rejected() {
        let mut data = VectorSet::new(4);
        data.push(&[0.0; 4]);
        let _ = tune_flash_params(&data, FlashParams::auto(4), &TuneOptions::default());
    }
}
