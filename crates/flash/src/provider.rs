//! The Flash [`DistanceProvider`]: register-resident ADT distances in the
//! CA stage, cached SDT lookups in the NS stage, and the access-aware
//! neighbor-codeword layout (paper Sections 3.3.4 and 3.3.5).

use crate::codec::{FlashCodec, FlashParams, K};
use graphs::provider::DistanceProvider;
use simdops::{lut16_batch, lut16_single, LUT_BATCH};
use vecstore::VectorSet;

/// Per-insert / per-query context: the quantized asymmetric distance table.
pub struct FlashCtx {
    /// `M_F * 16` bytes, subspace-major — each 16-byte run is one
    /// register-resident ADT.
    pub adt: Vec<u8>,
}

/// Per-node payload: the inserted vertex's neighbor codewords, grouped in
/// subspace-major batches of [`LUT_BATCH`] so one register load fetches one
/// (batch, subspace) pair.
///
/// Layout for a neighbor list of length `L` with `M_F` subspaces:
/// `ceil(L / 16)` blocks, each `M_F * 16` bytes; within block `b`, byte
/// `s*16 + j` is the codeword of neighbor `16b + j` in subspace `s`
/// (zero-padded past the end of the list).
#[derive(Default)]
pub struct FlashBlocks {
    bytes: Vec<u8>,
}

impl FlashBlocks {
    /// Raw block bytes (for tests and the cache-simulation harness).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Distance provider implementing the paper's Flash strategy.
pub struct FlashProvider {
    base: VectorSet,
    codec: FlashCodec,
    /// Global per-vector codewords: `n * M_F` bytes (one 4-bit codeword per
    /// byte, shuffle-ready). Source of truth for payload rebuilds and
    /// NS-stage SDT lookups.
    codes: Vec<u8>,
    /// Wall-clock nanoseconds spent training the codec and encoding the
    /// dataset (the paper's "coding time", Table 4).
    coding_ns: u64,
    /// When false, the scalar LUT path is forced (Table 3's SIMD ablation)
    /// regardless of the global `simdops` dispatch level.
    use_simd: bool,
}

impl FlashProvider {
    /// Trains the codec on `base` and encodes every vector.
    pub fn new(base: VectorSet, params: FlashParams) -> Self {
        let t0 = std::time::Instant::now();
        let codec = FlashCodec::train(&base, params);
        let m = codec.subspaces();
        let mut codes = Vec::with_capacity(base.len() * m);
        for v in base.iter() {
            let (c, _) = codec.encode(v);
            codes.extend_from_slice(&c);
        }
        let coding_ns = t0.elapsed().as_nanos() as u64;
        Self {
            base,
            codec,
            codes,
            coding_ns,
            use_simd: true,
        }
    }

    /// Builds a provider over `base` with an already-trained codec.
    ///
    /// Training is a fixed per-index cost, so deployments that build *many*
    /// small indexes over one corpus — per-label specialized partitions,
    /// LSM segments — should train once on the full distribution and share
    /// the codec; only encoding is paid per partition. `coding_ns` then
    /// covers encoding alone.
    pub fn from_codec(base: VectorSet, codec: FlashCodec) -> Self {
        let t0 = std::time::Instant::now();
        let m = codec.subspaces();
        let mut codes = Vec::with_capacity(base.len() * m);
        for v in base.iter() {
            let (c, _) = codec.encode(v);
            codes.extend_from_slice(&c);
        }
        let coding_ns = t0.elapsed().as_nanos() as u64;
        Self {
            base,
            codec,
            codes,
            coding_ns,
            use_simd: true,
        }
    }

    /// Forces the scalar lookup path (the paper's Table 3 "w/o SIMD" row).
    pub fn with_simd(mut self, enabled: bool) -> Self {
        self.use_simd = enabled;
        self
    }

    /// The trained codec.
    pub fn codec(&self) -> &FlashCodec {
        &self.codec
    }

    /// Nanoseconds spent in codec training + dataset encoding.
    pub fn coding_ns(&self) -> u64 {
        self.coding_ns
    }

    /// Codewords of vector `id` (`M_F` bytes).
    #[inline]
    pub fn codes_of(&self, id: u32) -> &[u8] {
        let m = self.codec.subspaces();
        &self.codes[id as usize * m..(id as usize + 1) * m]
    }
}

impl DistanceProvider for FlashProvider {
    type QueryCtx = FlashCtx;
    type NodePayload = FlashBlocks;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn base(&self) -> &VectorSet {
        &self.base
    }

    fn prepare_insert(&self, id: u32) -> FlashCtx {
        // The ADT is rebuilt from the original vector: projection + one
        // distance per centroid, shared with codeword selection at encode
        // time (here the codes already exist, so only the ADT is needed).
        let (_, adt) = self.codec.encode(self.base.get(id as usize));
        FlashCtx { adt }
    }

    fn prepare_query(&self, v: &[f32]) -> FlashCtx {
        let (_, adt) = self.codec.encode(v);
        FlashCtx { adt }
    }

    #[inline]
    fn dist_to(&self, ctx: &FlashCtx, id: u32) -> f32 {
        f32::from(lut16_single(
            &ctx.adt,
            self.codes_of(id),
            self.codec.subspaces(),
        ))
    }

    #[inline]
    fn dist_between(&self, a: u32, b: u32) -> f32 {
        f32::from(self.codec.sdc_quantized(self.codes_of(a), self.codes_of(b)))
    }

    #[inline]
    fn prefetch(&self, id: u32) {
        simdops::prefetch_slice(self.codes_of(id));
    }

    fn dist_to_neighbors(
        &self,
        ctx: &FlashCtx,
        ids: &[u32],
        payload: &FlashBlocks,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        let m = self.codec.subspaces();
        let block_bytes = m * LUT_BATCH;
        let blocks_available = payload.bytes.len() / block_bytes.max(1);
        let mut batch = [0u16; LUT_BATCH];
        let mut produced = 0usize;
        for b in 0..ids.len().div_ceil(LUT_BATCH) {
            let take = (ids.len() - produced).min(LUT_BATCH);
            if b < blocks_available {
                let block = &payload.bytes[b * block_bytes..(b + 1) * block_bytes];
                if self.use_simd {
                    lut16_batch(&ctx.adt, block, m, &mut batch);
                } else {
                    simdops::lut::lut16_batch_scalar(&ctx.adt, block, m, &mut batch);
                }
                out.extend(batch[..take].iter().map(|&d| f32::from(d)));
            } else {
                // Payload lagging the id list (possible transiently between
                // lock regions elsewhere): fall back to single lookups.
                out.extend(
                    ids[produced..produced + take]
                        .iter()
                        .map(|&id| self.dist_to(ctx, id)),
                );
            }
            produced += take;
        }
    }

    fn sync_payload(&self, payload: &mut FlashBlocks, ids: &[u32]) {
        let m = self.codec.subspaces();
        let block_bytes = m * LUT_BATCH;
        let blocks = ids.len().div_ceil(LUT_BATCH);
        payload.bytes.clear();
        payload.bytes.resize(blocks * block_bytes, 0);
        for (j, &id) in ids.iter().enumerate() {
            let block = j / LUT_BATCH;
            let lane = j % LUT_BATCH;
            let codes = self.codes_of(id);
            let dst = &mut payload.bytes[block * block_bytes..(block + 1) * block_bytes];
            for (s, &c) in codes.iter().enumerate() {
                dst[s * LUT_BATCH + lane] = c;
            }
        }
    }

    fn coded(&self) -> bool {
        true
    }

    fn aux_bytes(&self) -> usize {
        // Global codewords replace the original vectors; shared codec state
        // (codebooks, SDT, PCA basis) is counted once.
        self.codes.len() + self.codec.shared_bytes()
    }

    fn payload_bytes(&self, cap: usize) -> usize {
        cap.div_ceil(LUT_BATCH) * self.codec.subspaces() * LUT_BATCH
    }
}

/// Checks the block layout invariant used by `dist_to_neighbors`: byte
/// `(b, s, j)` equals the codeword of `ids[16b + j]` in subspace `s`.
/// Exposed for tests and the cache-simulation harness.
pub fn blocks_consistent(provider: &FlashProvider, payload: &FlashBlocks, ids: &[u32]) -> bool {
    let m = provider.codec().subspaces();
    let block_bytes = m * K;
    for (j, &id) in ids.iter().enumerate() {
        let block = j / K;
        let lane = j % K;
        let codes = provider.codes_of(id);
        for (s, &code) in codes.iter().enumerate().take(m) {
            if payload.bytes[block * block_bytes + s * K + lane] != code {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider(n: usize) -> FlashProvider {
        let (base, _) = vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), n, 1, 21);
        FlashProvider::new(
            base,
            FlashParams {
                d_f: 32,
                m_f: 8,
                train_sample: n.min(400),
                kmeans_iters: 8,
                seed: 4,
                grid_quantile: 0.9,
            },
        )
    }

    #[test]
    fn batch_distances_match_single_lookups() {
        let p = provider(300);
        let ctx = p.prepare_insert(0);
        let ids: Vec<u32> = (1..40).collect();
        let mut payload = FlashBlocks::default();
        p.sync_payload(&mut payload, &ids);
        let mut batched = Vec::new();
        p.dist_to_neighbors(&ctx, &ids, &payload, &mut batched);
        assert_eq!(batched.len(), ids.len());
        for (&id, &d) in ids.iter().zip(batched.iter()) {
            assert_eq!(d, p.dist_to(&ctx, id), "id {id}");
        }
    }

    #[test]
    fn scalar_and_simd_paths_agree() {
        let p_simd = provider(200);
        let ctx = p_simd.prepare_insert(5);
        let ids: Vec<u32> = (10..58).collect();
        let mut payload = FlashBlocks::default();
        p_simd.sync_payload(&mut payload, &ids);

        let mut simd_out = Vec::new();
        p_simd.dist_to_neighbors(&ctx, &ids, &payload, &mut simd_out);

        let p_scalar = provider(200).with_simd(false);
        let ctx2 = p_scalar.prepare_insert(5);
        let mut payload2 = FlashBlocks::default();
        p_scalar.sync_payload(&mut payload2, &ids);
        let mut scalar_out = Vec::new();
        p_scalar.dist_to_neighbors(&ctx2, &ids, &payload2, &mut scalar_out);

        assert_eq!(simd_out, scalar_out);
    }

    #[test]
    fn sync_payload_layout_invariant() {
        let p = provider(150);
        let ids: Vec<u32> = vec![
            3, 77, 12, 99, 140, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
        ];
        let mut payload = FlashBlocks::default();
        p.sync_payload(&mut payload, &ids);
        assert!(blocks_consistent(&p, &payload, &ids));
        // Two blocks for 18 ids with M_F = 8: 2 * 8 * 16 bytes.
        assert_eq!(payload.as_bytes().len(), 2 * 8 * 16);
    }

    #[test]
    fn payload_lag_falls_back_to_single_lookups() {
        let p = provider(100);
        let ctx = p.prepare_insert(0);
        let ids: Vec<u32> = (1..20).collect();
        let empty = FlashBlocks::default();
        let mut out = Vec::new();
        p.dist_to_neighbors(&ctx, &ids, &empty, &mut out);
        assert_eq!(out.len(), ids.len());
        for (&id, &d) in ids.iter().zip(out.iter()) {
            assert_eq!(d, p.dist_to(&ctx, id));
        }
    }

    #[test]
    fn ca_and_ns_distances_on_one_grid() {
        // dist_to of a vector to itself ~ its quantization floor; SDT of its
        // code pair is exactly 0. The two stages must be on the same scale:
        // dist_to(self) must be much smaller than dist_to(random far id).
        let p = provider(300);
        let ctx = p.prepare_insert(42);
        let self_d = p.dist_to(&ctx, 42);
        let far: f32 = (0..300u32)
            .map(|i| p.dist_to(&ctx, i))
            .fold(0.0f32, f32::max);
        assert!(self_d <= far * 0.5, "self {self_d} vs farthest {far}");
        // dist_between(x, x) is the residual floor, not zero — it estimates
        // the distance between two *distinct* vectors sharing x's codes.
        let far_between: f32 = (0..300u32)
            .map(|i| p.dist_between(42, i))
            .fold(0.0f32, f32::max);
        assert!(
            p.dist_between(42, 42) <= far_between * 0.5,
            "self-SDT {} vs farthest {}",
            p.dist_between(42, 42),
            far_between
        );
    }

    #[test]
    fn aux_bytes_well_below_full_precision() {
        let p = provider(400);
        assert!(
            p.aux_bytes() < p.base().payload_bytes() / 4,
            "aux {} vs raw {}",
            p.aux_bytes(),
            p.base().payload_bytes()
        );
    }

    #[test]
    fn coding_time_recorded() {
        let p = provider(100);
        assert!(p.coding_ns() > 0);
    }

    #[test]
    fn payload_bytes_matches_layout() {
        let p = provider(50);
        assert_eq!(p.payload_bytes(32), 2 * 8 * 16);
        assert_eq!(p.payload_bytes(1), 8 * 16);
        assert_eq!(p.payload_bytes(0), 0);
    }
}
