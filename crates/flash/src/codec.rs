//! The Flash codec: PCA → subspace codebooks → shared-grid quantized
//! distance tables (paper Sections 3.3.2 and 3.3.3).

use quantizers::{kmeans, PcaCodec};
use simdops::LUT_BATCH;
use vecstore::VectorSet;

/// Number of centroids per subspace. Fixed at 16 so one ADT (16 × 8-bit
/// quantized distances) fills exactly one 128-bit register and codewords
/// are 4 bits (`L_F = 4`).
pub const K: usize = LUT_BATCH;

/// Bits per quantized distance-table entry (`H` in the paper). Fixed at 8:
/// with `K = 16` one subspace's ADT is `16 × 8 = 128` bits.
pub const H_BITS: u32 = 8;

/// Flash hyper-parameters (paper Section 3.3.6).
#[derive(Debug, Clone, Copy)]
pub struct FlashParams {
    /// Dimensionality of retained principal components (`d_F`).
    pub d_f: usize,
    /// Number of subspaces (`M_F`).
    pub m_f: usize,
    /// Training-sample size for PCA and the codebooks.
    pub train_sample: usize,
    /// Lloyd iterations per codebook.
    pub kmeans_iters: usize,
    /// RNG seed for codebook initialization.
    pub seed: u64,
    /// Quantile of the per-subspace partial-distance distribution that maps
    /// to the top of the 8-bit grid. `1.0` reproduces the paper's literal
    /// `dist_max`; values below 1 trade resolution in the (irrelevant) far
    /// tail — which clamps to 255 — for resolution in the near band where
    /// the CA/NS comparisons actually happen.
    pub grid_quantile: f64,
}

impl FlashParams {
    /// Sensible defaults mirroring the paper's tuned settings
    /// (`d_F = 64`, `M_F = 16` on their embedding datasets), clamped for
    /// small input dimensionalities.
    pub fn auto(dim: usize) -> Self {
        let d_f = dim.min(64);
        let m_f = d_f.min(16);
        Self {
            d_f,
            m_f,
            train_sample: 10_000,
            kmeans_iters: 12,
            seed: 0xF1A5,
            grid_quantile: 0.5,
        }
    }

    /// Overrides the grid quantile.
    pub fn with_grid_quantile(mut self, q: f64) -> Self {
        self.grid_quantile = q;
        self
    }

    /// Overrides `d_F`.
    pub fn with_d_f(mut self, d_f: usize) -> Self {
        self.d_f = d_f;
        self
    }

    /// Overrides `M_F`.
    pub fn with_m_f(mut self, m_f: usize) -> Self {
        self.m_f = m_f;
        self
    }
}

/// Subspace extent over the principal-component vector.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: usize,
    len: usize,
}

/// A trained Flash codec.
///
/// Holds the PCA basis, the `M_F` codebooks of `K = 16` centroids, the
/// shared quantization grid (`dist_min`, `Δ`), and the pre-quantized
/// symmetric distance table (SDT) used by the Neighbor Selection stage.
#[derive(Debug, Clone)]
pub struct FlashCodec {
    pca: PcaCodec,
    spans: Vec<Span>,
    /// Concatenated codebooks: subspace `s` holds `K * spans[s].len` floats
    /// at `codebook_offsets[s]`.
    codebooks: Vec<f32>,
    codebook_offsets: Vec<usize>,
    /// Quantization grid shared by ADT and SDT (paper: same `Δ` and `H` for
    /// both so CA- and NS-stage values are comparable).
    dist_min: f32,
    inv_delta: f32,
    /// Per-centroid mean squared residual, `M_F * K` floats (the correction
    /// term making ADT and SDT unbiased estimates of true distances).
    residuals: Vec<f32>,
    /// Quantized SDT: `M_F * K * K` bytes; entry `s*256 + a*16 + b`.
    sdt: Vec<u8>,
}

impl FlashCodec {
    /// Trains PCA, the subspace codebooks, the quantization grid and the
    /// SDT on (a sample of) `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty, `m_f == 0`, `m_f > d_f`, or
    /// `d_f > data.dim()`.
    pub fn train(data: &VectorSet, params: FlashParams) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(params.m_f >= 1, "M_F must be positive");
        assert!(params.d_f >= params.m_f, "d_F must be at least M_F");
        assert!(
            params.d_f <= data.dim(),
            "d_F cannot exceed the input dimensionality"
        );

        let sample = data.stride_sample(params.train_sample);
        // PCA stabilizes with far fewer samples than the codebooks need, and
        // its covariance pass is O(sample · D²) — fit it on a subsample.
        let pca_sample = sample.stride_sample((4 * params.d_f).max(512));
        let pca = PcaCodec::fit(&pca_sample, params.d_f);

        // Project the sample once; codebooks are trained in PCA space.
        let mut projected = VectorSet::with_capacity(params.d_f, sample.len());
        for v in sample.iter() {
            projected.push(&pca.project(v));
        }

        // Subspace partition (front-loads the remainder like PQ).
        let base_len = params.d_f / params.m_f;
        let extra = params.d_f % params.m_f;
        let mut spans = Vec::with_capacity(params.m_f);
        let mut start = 0;
        for s in 0..params.m_f {
            let len = base_len + usize::from(s < extra);
            spans.push(Span { start, len });
            start += len;
        }

        // Train one 16-centroid codebook per subspace, recording each
        // centroid's mean squared residual. Table entries are *corrected*
        // by these residual energies (E[δ²(x,y)] ≈ δ²(c_x,c_y) + r_x + r_y
        // for independent cell residuals), which puts the asymmetric (one
        // residual already exact) and symmetric (two residuals dropped)
        // tables on the same scale — without it, SDT values systematically
        // undershoot ADT values and the NS pruning rule over-fires.
        let mut codebooks = Vec::new();
        let mut codebook_offsets = Vec::with_capacity(params.m_f);
        let mut residuals = vec![0.0f32; params.m_f * K];
        for (s, span) in spans.iter().enumerate() {
            let mut sub = Vec::with_capacity(projected.len() * span.len);
            for v in projected.iter() {
                sub.extend_from_slice(&v[span.start..span.start + span.len]);
            }
            let result = kmeans(
                &sub,
                span.len,
                K,
                params.kmeans_iters,
                params.seed + s as u64,
            );
            let mut sums = [0.0f64; K];
            let mut counts = [0usize; K];
            for (i, &a) in result.assignments.iter().enumerate() {
                let point = &sub[i * span.len..(i + 1) * span.len];
                sums[a as usize] +=
                    f64::from(simdops::l2_sq(point, result.centroid(a as usize, span.len)));
                counts[a as usize] += 1;
            }
            for c in 0..K {
                residuals[s * K + c] = if counts[c] > 0 {
                    (sums[c] / counts[c] as f64) as f32
                } else {
                    0.0
                };
            }
            codebook_offsets.push(codebooks.len());
            codebooks.extend_from_slice(&result.centroids);
        }

        // Shared quantization grid: dist_max = Σ_s max_s over both the
        // sample→centroid (ADT-like) and centroid→centroid (SDT) distances;
        // dist_min = min over subspaces (0 in practice: SDT diagonals).
        let mut partial = Self {
            pca,
            spans,
            codebooks,
            codebook_offsets,
            dist_min: 0.0,
            inv_delta: 0.0,
            residuals,
            sdt: Vec::new(),
        };
        let q = params.grid_quantile.clamp(0.0, 1.0);
        let mut dist_max_sum = 0.0f32;
        let mut dist_min_all = f32::INFINITY;
        let mut partials: Vec<f32> = Vec::with_capacity(projected.len() * K + K * K);
        for s in 0..params.m_f {
            partials.clear();
            for v in projected.iter() {
                let span = partial.spans[s];
                let sub = &v[span.start..span.start + span.len];
                for c in 0..K {
                    partials
                        .push(simdops::l2_sq(sub, partial.centroid(s, c)) + partial.residual(s, c));
                }
            }
            for a in 0..K {
                for b in 0..K {
                    partials.push(
                        simdops::l2_sq(partial.centroid(s, a), partial.centroid(s, b))
                            + partial.residual(s, a)
                            + partial.residual(s, b),
                    );
                }
            }
            partials.sort_by(f32::total_cmp);
            let smin = partials[0];
            let idx = ((partials.len() - 1) as f64 * q) as usize;
            let smax = partials[idx];
            dist_max_sum += smax;
            dist_min_all = dist_min_all.min(smin);
        }
        let delta = (dist_max_sum - dist_min_all).max(f32::MIN_POSITIVE);
        partial.dist_min = dist_min_all;
        partial.inv_delta = ((1u32 << H_BITS) - 1) as f32 / delta;

        // Pre-quantized SDT, shared by every insertion (paper: resides in
        // cache, eliminating NS-stage vector fetches).
        let mut sdt = vec![0u8; params.m_f * K * K];
        for s in 0..params.m_f {
            for a in 0..K {
                for b in 0..K {
                    let d = simdops::l2_sq(partial.centroid(s, a), partial.centroid(s, b))
                        + partial.residual(s, a)
                        + partial.residual(s, b);
                    sdt[s * K * K + a * K + b] = partial.quantize(d);
                }
            }
        }
        partial.sdt = sdt;
        partial
    }

    /// Number of subspaces `M_F`.
    pub fn subspaces(&self) -> usize {
        self.spans.len()
    }

    /// Retained principal dimensions `d_F`.
    pub fn d_f(&self) -> usize {
        self.pca.kept_dims()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        use quantizers::Codec as _;
        self.pca.dim()
    }

    /// The quantized symmetric distance table (`M_F * 256` bytes).
    pub fn sdt(&self) -> &[u8] {
        &self.sdt
    }

    /// Mean squared residual of centroid `c` in subspace `s`.
    #[inline]
    fn residual(&self, s: usize, c: usize) -> f32 {
        self.residuals[s * K + c]
    }

    #[inline]
    fn centroid(&self, s: usize, c: usize) -> &[f32] {
        let len = self.spans[s].len;
        let off = self.codebook_offsets[s] + c * len;
        &self.codebooks[off..off + len]
    }

    /// Quantizes one partial distance onto the shared 8-bit grid
    /// (paper Equation 9), clamping out-of-range values.
    #[inline]
    pub fn quantize(&self, dist: f32) -> u8 {
        let t = (dist - self.dist_min) * self.inv_delta;
        t.clamp(0.0, 255.0) as u8
    }

    /// Projects a full-dimensional vector onto the principal components.
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        self.pca.project(v)
    }

    /// Encodes a *projected* vector, simultaneously emitting its codewords
    /// (4-bit values stored one per byte) and its quantized ADT
    /// (`M_F * 16` bytes, subspace-major) — the integrated implementation
    /// the paper's Remark (2) describes: codeword selection and ADT
    /// generation share the same centroid distance computations.
    pub fn encode_projected(&self, projected: &[f32]) -> (Vec<u8>, Vec<u8>) {
        assert_eq!(
            projected.len(),
            self.d_f(),
            "projected dimensionality mismatch"
        );
        let m = self.subspaces();
        let mut codes = Vec::with_capacity(m);
        let mut adt = vec![0u8; m * K];
        for (s, span) in self.spans.iter().enumerate() {
            let sub = &projected[span.start..span.start + span.len];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..K {
                let d = simdops::l2_sq(sub, self.centroid(s, c));
                // Table entries estimate distances to *vectors* coded `c`,
                // hence the residual correction; codeword selection stays
                // on the raw centroid distance.
                adt[s * K + c] = self.quantize(d + self.residual(s, c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            codes.push(best as u8);
        }
        (codes, adt)
    }

    /// Convenience: project then encode.
    pub fn encode(&self, v: &[f32]) -> (Vec<u8>, Vec<u8>) {
        self.encode_projected(&self.project(v))
    }

    /// Quantized symmetric distance between two code sequences (the
    /// NS-stage distance; a pure SDT lookup, no vector access).
    #[inline]
    pub fn sdc_quantized(&self, a: &[u8], b: &[u8]) -> u16 {
        debug_assert_eq!(a.len(), self.subspaces());
        debug_assert_eq!(b.len(), self.subspaces());
        let mut acc = 0u16;
        for (s, (&ca, &cb)) in a.iter().zip(b.iter()).enumerate() {
            acc += u16::from(self.sdt[s * K * K + usize::from(ca) * K + usize::from(cb)]);
        }
        acc
    }

    /// Reconstructs the derived vector in PCA space (centroid
    /// concatenation), for the Theorem-1 error analysis.
    pub fn reconstruct_projected(&self, codes: &[u8]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.d_f()];
        for (s, &c) in codes.iter().enumerate() {
            let span = self.spans[s];
            out[span.start..span.start + span.len]
                .copy_from_slice(self.centroid(s, usize::from(c)));
        }
        out
    }

    /// Bytes of shared codec state (codebooks as f32 + SDT + PCA basis).
    pub fn shared_bytes(&self) -> usize {
        let basis_bytes = self.input_dim() * self.d_f() * 4;
        self.codebooks.len() * 4 + self.sdt.len() + basis_bytes
    }
}

/// Implements the quantizers `Codec` trait so the Theorem-1 reliability
/// estimator can evaluate Flash alongside PQ/SQ/PCA. Reconstruction lifts
/// the centroid concatenation back through the PCA basis.
impl quantizers::Codec for FlashCodec {
    fn dim(&self) -> usize {
        self.input_dim()
    }

    fn reconstruct(&self, v: &[f32]) -> Vec<f32> {
        let (codes, _) = self.encode(v);
        let in_pca = self.reconstruct_projected(&codes);
        self.pca.lift(&in_pca)
    }

    fn code_bytes(&self) -> usize {
        // 4-bit codewords, two per byte.
        self.subspaces().div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdops::lut16_single;

    fn dataset(n: usize, dim: usize, seed: u64) -> VectorSet {
        // Cluster-rich data matching the embedding workloads Flash targets.
        let spec = vecstore::DatasetSpec::new(dim, 100, 0.96, 0.4, seed);
        vecstore::generate(&spec, n, 1, seed).0
    }

    fn codec(dim: usize, d_f: usize, m_f: usize) -> (FlashCodec, VectorSet) {
        let data = dataset(500, dim, 11);
        let params = FlashParams {
            d_f,
            m_f,
            train_sample: 400,
            kmeans_iters: 10,
            seed: 1,
            grid_quantile: 0.5,
        };
        (FlashCodec::train(&data, params), data)
    }

    #[test]
    fn codes_fit_four_bits() {
        let (c, data) = codec(64, 32, 8);
        for i in 0..50 {
            let (codes, adt) = c.encode(data.get(i));
            assert_eq!(codes.len(), 8);
            assert_eq!(adt.len(), 8 * 16);
            assert!(codes.iter().all(|&x| x < 16));
        }
    }

    #[test]
    fn own_code_is_argmin_centroid() {
        // Per subspace, the emitted codeword must be the centroid
        // minimizing the raw projected distance. (The ADT entry at the own
        // codeword is *not* necessarily the row minimum: table entries
        // carry the per-centroid residual correction while codeword
        // selection deliberately stays on the raw centroid distance.)
        let (c, data) = codec(64, 32, 8);
        let projected = c.project(data.get(3));
        let (codes, _adt) = c.encode(data.get(3));
        for (s, span) in c.spans.iter().enumerate() {
            let sub = &projected[span.start..span.start + span.len];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for cand in 0..K {
                let d = simdops::l2_sq(sub, c.centroid(s, cand));
                if d < best_d {
                    best_d = d;
                    best = cand;
                }
            }
            assert_eq!(usize::from(codes[s]), best, "subspace {s}");
        }
    }

    #[test]
    fn quantized_distances_preserve_gross_ordering() {
        // Rank correlation between quantized ADC distances and exact
        // distances must be strongly positive. Use quantile 1.0 so no pair
        // falls in the (deliberately) clamped far band.
        let data = dataset(500, 64, 11);
        let c = FlashCodec::train(
            &data,
            FlashParams {
                d_f: 48,
                m_f: 12,
                train_sample: 400,
                kmeans_iters: 10,
                seed: 1,
                grid_quantile: 1.0,
            },
        );
        let q = data.get(0);
        let (_, adt) = c.encode(q);
        let m = c.subspaces();
        let mut pairs: Vec<(u16, f32)> = (1..200)
            .map(|i| {
                let (codes, _) = c.encode(data.get(i));
                let approx = lut16_single(&adt, &codes, m);
                let exact = simdops::l2_sq(q, data.get(i));
                (approx, exact)
            })
            .collect();
        // Count concordant pairs on a subsample.
        let mut concordant = 0usize;
        let mut total = 0usize;
        pairs.truncate(80);
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                let (qa, ea) = pairs[i];
                let (qb, eb) = pairs[j];
                // Only score pairs whose exact distances are meaningfully
                // apart; ordering within a near-tie band is below the
                // resolution any 4-bit codec can promise (Theorem 1 needs
                // |e·u − b| ≥ |E|, which near-ties violate by definition).
                if (ea - eb).abs() < 0.2 * ea.min(eb) {
                    continue;
                }
                total += 1;
                if (qa < qb) == (ea < eb) || qa == qb {
                    concordant += 1;
                }
            }
        }
        let tau = concordant as f64 / total as f64;
        assert!(tau > 0.8, "concordance {tau} too low");
    }

    #[test]
    fn sdc_symmetric_and_small_diagonal() {
        let (c, data) = codec(64, 32, 8);
        let (a, _) = c.encode(data.get(1));
        let (b, _) = c.encode(data.get(2));
        assert_eq!(c.sdc_quantized(&a, &b), c.sdc_quantized(&b, &a));
        // The diagonal is the residual-correction floor (2·r per subspace),
        // not zero — it estimates the distance between two distinct vectors
        // sharing a code. It must still sit well below typical distances.
        let self_d = c.sdc_quantized(&a, &a);
        let max_d = (0..60)
            .map(|i| c.sdc_quantized(&a, &c.encode(data.get(i)).0))
            .max()
            .unwrap();
        assert!(self_d <= max_d / 2, "diag {self_d} vs max {max_d}");
    }

    #[test]
    fn adt_and_sdt_share_a_grid() {
        // For a vector that coincides with its centroid, the ADT entry for
        // centroid t is η(δ²(c_code, c_t) + r_t) while the SDT entry
        // (code, t) is η(δ²(c_code, c_t) + r_code + r_t): on a shared grid
        // they must differ by exactly the quantized residual of the own
        // code (±2 for the two independent floor roundings).
        let (c, data) = codec(64, 32, 8);
        let (codes, _) = c.encode(data.get(0));
        let projected = c.reconstruct_projected(&codes);
        let (codes2, adt2) = c.encode_projected(&projected);
        assert_eq!(codes, codes2, "reconstruction must encode to itself");
        for s in 0..c.subspaces() {
            let own = usize::from(codes[s]);
            let shift = (c.residual(s, own) * c.inv_delta).round() as i16;
            for t in 0..K {
                let via_adt = i16::from(adt2[s * K + t]);
                let via_sdt = i16::from(c.sdt()[s * K * K + own * K + t]);
                // SDT saturates at 255; skip clamped entries.
                if via_sdt == 255 || via_adt == 255 {
                    continue;
                }
                assert!(
                    ((via_sdt - via_adt) - shift).abs() <= 2,
                    "subspace {s} centroid {t}: adt {via_adt}, sdt {via_sdt}, shift {shift}"
                );
            }
        }
    }

    #[test]
    fn reliability_estimator_accepts_flash() {
        let (c, data) = codec(64, 48, 12);
        let report = quantizers::comparison_reliability(&c, &data.slice(0, 120), 100, 5);
        assert_eq!(report.total, 100);
        // Triples pit each vector's two *nearest* neighbors against each
        // other — the hardest comparisons in the workload (their bisector
        // hyperplane passes right next to the anchor). Agreement well above
        // chance is what Theorem 1 needs; CA/NS comparisons against the
        // wider candidate set are far easier than this worst case.
        assert!(
            report.agreement_fraction() > 0.6,
            "agreement {}",
            report.agreement_fraction()
        );
    }

    #[test]
    fn more_principal_dims_reduce_reconstruction_error() {
        let data = dataset(400, 64, 13);
        let small = FlashCodec::train(
            &data,
            FlashParams {
                d_f: 8,
                m_f: 8,
                train_sample: 300,
                kmeans_iters: 8,
                seed: 2,
                grid_quantile: 0.9,
            },
        );
        let large = FlashCodec::train(
            &data,
            FlashParams {
                d_f: 48,
                m_f: 8,
                train_sample: 300,
                kmeans_iters: 8,
                seed: 2,
                grid_quantile: 0.9,
            },
        );
        use quantizers::Codec as _;
        let err = |c: &FlashCodec| -> f32 {
            (0..60)
                .map(|i| simdops::l2_sq(data.get(i), &c.reconstruct(data.get(i))))
                .sum()
        };
        assert!(err(&large) < err(&small));
    }

    #[test]
    fn code_bytes_packs_nibbles() {
        let (c, _) = codec(64, 32, 8);
        use quantizers::Codec as _;
        assert_eq!(c.code_bytes(), 4);
    }

    #[test]
    #[should_panic(expected = "d_F must be at least M_F")]
    fn rejects_m_f_above_d_f() {
        let data = dataset(50, 16, 15);
        let _ = FlashCodec::train(
            &data,
            FlashParams {
                d_f: 4,
                m_f: 8,
                train_sample: 50,
                kmeans_iters: 4,
                seed: 3,
                grid_quantile: 0.9,
            },
        );
    }
}
