//! **Flash** — the paper's compact coding strategy and access-aware memory
//! layout for graph index construction (Section 3.3).
//!
//! Flash combines four ingredients, each targeting a specific CPU-level
//! bottleneck that Section 2.2 identifies in HNSW construction:
//!
//! | Ingredient | Bottleneck attacked |
//! |---|---|
//! | PCA to `d_F` principal components | wasted codeword bits on low-variance axes |
//! | `M_F` subspaces × 16 centroids (4-bit codewords) | ADT must fit one SIMD register |
//! | 8-bit shared-grid quantization of ADT and SDT | register-resident tables, CA/NS comparability |
//! | neighbor codewords stored *with* neighbor IDs, in subspace-major batches of 16 | random memory accesses to fetch neighbor vectors |
//!
//! The crate plugs into the generic graph builders of the `graphs` crate via
//! [`FlashProvider`], which overrides the batched neighbor-distance hook
//! with the `pshufb` lookup kernel and maintains the per-node codeword
//! blocks through the payload-sync hook. [`FlashHnsw`], [`FlashNsg`] and
//! [`FlashTauMg`] are ready-made index types.
//!
//! ```
//! use flash::{BuildFlash, FlashHnsw, FlashParams};
//! use graphs::HnswParams;
//! use vecstore::{generate, DatasetProfile};
//!
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 500, 4, 42);
//! let index = FlashHnsw::build_flash(
//!     base,
//!     FlashParams::auto(256),
//!     HnswParams { c: 64, r: 8, seed: 1 },
//! );
//! let hits = index.search_rerank(queries.get(0), 3, 32, 4);
//! assert_eq!(hits.len(), 3);
//! ```

pub mod codec;
pub mod provider;
pub mod tune;

pub use codec::{FlashCodec, FlashParams};
pub use provider::{FlashBlocks, FlashCtx, FlashProvider};
pub use tune::{tune_flash_params, TuneOptions, TuneOutcome};

use graphs::{
    Hcnng, HcnngParams, Hnsw, HnswParams, Nsg, NsgParams, TauMg, TauMgParams, Vamana, VamanaParams,
};
use vecstore::VectorSet;

/// HNSW built and searched through Flash codes (the paper's HNSW-Flash).
pub type FlashHnsw = Hnsw<FlashProvider>;

/// NSG on Flash codes (Figure 14 generality experiment).
pub type FlashNsg = Nsg<FlashProvider>;

/// τ-MG on Flash codes (Figure 14 generality experiment).
pub type FlashTauMg = TauMg<FlashProvider>;

/// Vamana (DiskANN) on Flash codes — generality beyond the paper's
/// Figure 14, exercising the α-RNG pruning rule.
pub type FlashVamana = Vamana<FlashProvider>;

/// HCNNG on Flash codes — the MST construction family; only the
/// cheap-distance effect applies (no candidate pools to batch).
pub type FlashHcnng = Hcnng<FlashProvider>;

/// Builds an HNSW-Flash index over `base`.
pub trait BuildFlash: Sized {
    /// Trains the codec, encodes the dataset, and runs construction.
    fn build_flash(base: VectorSet, flash: FlashParams, params: HnswParams) -> Self;
}

impl BuildFlash for FlashHnsw {
    fn build_flash(base: VectorSet, flash: FlashParams, params: HnswParams) -> Self {
        let provider = FlashProvider::new(base, flash);
        Hnsw::build(provider, params)
    }
}

/// Builds an NSG-Flash index over `base`.
pub fn build_flash_nsg(base: VectorSet, flash: FlashParams, params: NsgParams) -> FlashNsg {
    let provider = FlashProvider::new(base, flash);
    Nsg::build(provider, params)
}

/// Builds a τ-MG-Flash index over `base`.
pub fn build_flash_taumg(base: VectorSet, flash: FlashParams, params: TauMgParams) -> FlashTauMg {
    let provider = FlashProvider::new(base, flash);
    TauMg::build(provider, params)
}

/// Builds a Vamana-Flash index over `base`.
pub fn build_flash_vamana(
    base: VectorSet,
    flash: FlashParams,
    params: VamanaParams,
) -> FlashVamana {
    let provider = FlashProvider::new(base, flash);
    Vamana::build(provider, params)
}

/// Builds an HCNNG-Flash index over `base`.
pub fn build_flash_hcnng(base: VectorSet, flash: FlashParams, params: HcnngParams) -> FlashHcnng {
    let provider = FlashProvider::new(base, flash);
    Hcnng::build(provider, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::DistanceProvider;

    #[test]
    fn end_to_end_hnsw_flash() {
        let (base, queries) =
            vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 600, 8, 3);
        let gt = vecstore::ground_truth(&base, &queries, 1);
        let index = FlashHnsw::build_flash(
            base,
            FlashParams::auto(256),
            HnswParams {
                c: 64,
                r: 8,
                seed: 2,
            },
        );
        let mut hits = 0;
        for (qi, truth) in gt.iter().enumerate() {
            let found = index.search_rerank(queries.get(qi), 1, 64, 8);
            if found.first().map(|h| h.id) == Some(u64::from(truth[0].id)) {
                hits += 1;
            }
        }
        assert!(hits >= 6, "top-1 recall {hits}/8 too low");
    }

    #[test]
    fn flash_index_smaller_than_raw_vectors() {
        let (base, _) = vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 400, 1, 5);
        let raw_bytes = base.payload_bytes();
        let index = FlashHnsw::build_flash(
            base,
            FlashParams::auto(256),
            HnswParams {
                c: 32,
                r: 8,
                seed: 2,
            },
        );
        assert!(index.provider().aux_bytes() < raw_bytes);
    }

    #[test]
    fn nsg_flash_builds_and_searches() {
        let (base, queries) =
            vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 400, 4, 7);
        let nsg = build_flash_nsg(
            base,
            FlashParams::auto(256),
            NsgParams {
                r: 8,
                c: 48,
                seed: 3,
            },
        );
        let hits = nsg.search_rerank(queries.get(0), 3, 48, 4);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn from_codec_matches_fresh_training() {
        let (base, _) = vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 500, 1, 31);
        let params = FlashParams::auto(256);
        let fresh = FlashProvider::new(base.clone(), params);
        let shared = FlashProvider::from_codec(base, fresh.codec().clone());
        // Identical codec ⇒ identical distances.
        let ctx_a = fresh.prepare_insert(7);
        let ctx_b = shared.prepare_insert(7);
        for id in [0u32, 13, 99, 400] {
            assert_eq!(fresh.dist_to(&ctx_a, id), shared.dist_to(&ctx_b, id));
            assert_eq!(fresh.dist_between(7, id), shared.dist_between(7, id));
        }
        // Sharing skips training, so coding time must shrink.
        assert!(shared.coding_ns() < fresh.coding_ns());
    }

    #[test]
    fn vamana_flash_builds_and_searches() {
        let (base, queries) =
            vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 400, 4, 21);
        let gt = vecstore::ground_truth(&base, &queries, 1);
        let index = build_flash_vamana(
            base,
            FlashParams::auto(256),
            VamanaParams {
                r: 10,
                c: 48,
                alpha: 1.2,
                seed: 5,
            },
        );
        let mut hits = 0;
        for (qi, truth) in gt.iter().enumerate() {
            let found = index.search_rerank(queries.get(qi), 1, 48, 8);
            if found.first().map(|h| h.id) == Some(u64::from(truth[0].id)) {
                hits += 1;
            }
        }
        assert!(hits >= 3, "Vamana-Flash top-1 recall {hits}/4 too low");
    }

    #[test]
    fn hcnng_flash_builds_and_searches() {
        let (base, queries) =
            vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 400, 4, 23);
        let index = build_flash_hcnng(
            base,
            FlashParams::auto(256),
            HcnngParams {
                trees: 6,
                leaf_size: 32,
                mst_degree: 3,
                seed: 5,
            },
        );
        let hits = index.search_rerank(queries.get(0), 3, 48, 4);
        assert_eq!(hits.len(), 3);
        assert_eq!(index.graph().reachable_from_entry(), 400);
    }

    #[test]
    fn taumg_flash_builds_and_searches() {
        let (base, queries) =
            vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 300, 4, 9);
        let index = build_flash_taumg(base, FlashParams::auto(256), TauMgParams::default());
        let hits = index.search(queries.get(1), 2, 32);
        assert_eq!(hits.len(), 2);
    }
}
