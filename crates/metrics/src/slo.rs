//! Windowed service-level objectives with multi-window burn-rate alerts.
//!
//! An [`Objective`] declares an error budget: the fraction of "bad"
//! events (slow queries, errors, shed requests, low-recall answers) the
//! service is allowed to serve. A [`SloTracker`] folds good/bad counts
//! into per-tick buckets and, at every tick boundary, evaluates the
//! classic multi-window multi-burn-rate alert: the objective is
//! *breached* only when both a short window (fast burn — "it is on fire
//! right now") and a long window (slow burn — "and it is not a blip")
//! spend budget faster than their thresholds. One window alone either
//! pages on noise or pages too late; requiring both is the standard
//! SRE-workbook construction.
//!
//! Ticks are whatever the caller says they are. The scenario harness
//! advances virtual ticks, so `BenchReport.slo` is a deterministic pure
//! function of the seeded workload; the serving stack wraps the same
//! tracker in a [`SloGuard`] that advances ticks from wall time and
//! samples cumulative counters, which is what flips `/healthz` to
//! degraded on a live server.

use crate::report::Json;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// An error-budget objective: at most `budget` fraction of events bad.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Name reported in summaries and `/healthz` bodies
    /// (e.g. `"shed_fraction"`, `"recall"`, `"p99_latency"`).
    pub name: String,
    /// Allowed bad fraction in `(0, 1]`; burn rate is measured
    /// bad-fraction divided by this.
    pub budget: f64,
}

impl Objective {
    /// A named objective; `budget` must be in `(0, 1]`.
    pub fn new(name: impl Into<String>, budget: f64) -> Self {
        assert!(
            budget > 0.0 && budget <= 1.0,
            "objective budget must be in (0, 1]"
        );
        Self {
            name: name.into(),
            budget,
        }
    }
}

/// Window lengths (in ticks) and burn-rate thresholds for breach
/// detection. A breach requires `fast_window` burn ≥ `fast_burn`
/// **and** `slow_window` burn ≥ `slow_burn` at the same tick boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnConfig {
    /// Short window: catches active budget fires quickly.
    pub fast_window: usize,
    /// Long window: confirms the fire is sustained, not a blip.
    pub slow_window: usize,
    /// Burn-rate threshold over the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold over the slow window.
    pub slow_burn: f64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        Self {
            fast_window: 12,
            slow_window: 60,
            fast_burn: 2.0,
            slow_burn: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
struct ObjectiveState {
    objective: Objective,
    /// Per-tick (good, bad) ring, `slow_window` slots; `pos` is the
    /// bucket currently accumulating.
    ring: Vec<(u64, u64)>,
    pos: usize,
    total_good: u64,
    total_bad: u64,
    fast_burn: f64,
    slow_burn: f64,
    breached: bool,
    breaches: u64,
}

impl ObjectiveState {
    fn window_burn(&self, window: usize) -> f64 {
        let n = self.ring.len();
        let (mut good, mut bad) = (0u64, 0u64);
        for back in 0..window.min(n) {
            let (g, b) = self.ring[(self.pos + n - back) % n];
            good += g;
            bad += b;
        }
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.objective.budget
    }
}

/// Tracks a set of objectives across ticks and detects burn-rate
/// breaches. Purely count-driven: same observations in the same tick
/// order always produce the same summary.
#[derive(Debug, Clone)]
pub struct SloTracker {
    config: BurnConfig,
    objectives: Vec<ObjectiveState>,
    ticks: u64,
}

impl SloTracker {
    /// A tracker over `objectives` with shared window/burn thresholds.
    pub fn new(config: BurnConfig, objectives: Vec<Objective>) -> Self {
        assert!(config.fast_window > 0, "fast window must be nonempty");
        assert!(
            config.slow_window >= config.fast_window,
            "slow window must contain the fast window"
        );
        let objectives = objectives
            .into_iter()
            .map(|objective| ObjectiveState {
                objective,
                ring: vec![(0, 0); config.slow_window],
                pos: 0,
                total_good: 0,
                total_bad: 0,
                fast_burn: 0.0,
                slow_burn: 0.0,
                breached: false,
                breaches: 0,
            })
            .collect();
        Self {
            config,
            objectives,
            ticks: 0,
        }
    }

    /// Number of objectives tracked.
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Whether the tracker has no objectives.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Index of the objective named `name`, if tracked.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.objectives
            .iter()
            .position(|o| o.objective.name == name)
    }

    /// Adds `good` conforming and `bad` budget-spending events to
    /// objective `idx`'s current tick bucket.
    pub fn observe(&mut self, idx: usize, good: u64, bad: u64) {
        let state = &mut self.objectives[idx];
        let slot = &mut state.ring[state.pos];
        slot.0 += good;
        slot.1 += bad;
        state.total_good += good;
        state.total_bad += bad;
    }

    /// Closes the current tick: evaluates burn rates (the just-filled
    /// bucket is the newest sample in both windows), latches breach
    /// state, and opens a fresh bucket.
    pub fn tick(&mut self) {
        self.ticks += 1;
        let config = self.config;
        for state in &mut self.objectives {
            state.fast_burn = state.window_burn(config.fast_window);
            state.slow_burn = state.window_burn(config.slow_window);
            let now = state.fast_burn >= config.fast_burn && state.slow_burn >= config.slow_burn;
            if now && !state.breached {
                state.breaches += 1;
            }
            state.breached = now;
            state.pos = (state.pos + 1) % state.ring.len();
            state.ring[state.pos] = (0, 0);
        }
    }

    /// `false` while any objective is in a latched breach.
    pub fn healthy(&self) -> bool {
        self.objectives.iter().all(|o| !o.breached)
    }

    /// Point-in-time summary of every objective.
    pub fn summary(&self) -> SloSummary {
        SloSummary {
            config: self.config,
            ticks: self.ticks,
            healthy: self.healthy(),
            objectives: self
                .objectives
                .iter()
                .map(|o| ObjectiveSummary {
                    name: o.objective.name.clone(),
                    budget: o.objective.budget,
                    good: o.total_good,
                    bad: o.total_bad,
                    fast_burn: o.fast_burn,
                    slow_burn: o.slow_burn,
                    breached: o.breached,
                    breaches: o.breaches,
                })
                .collect(),
        }
    }
}

/// One objective's lifetime counters and latest burn rates.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveSummary {
    /// Objective name.
    pub name: String,
    /// Configured error budget (allowed bad fraction).
    pub budget: f64,
    /// Lifetime conforming events.
    pub good: u64,
    /// Lifetime budget-spending events.
    pub bad: u64,
    /// Burn rate over the fast window at the last tick.
    pub fast_burn: f64,
    /// Burn rate over the slow window at the last tick.
    pub slow_burn: f64,
    /// Whether the objective was breached at the last tick.
    pub breached: bool,
    /// Times the objective transitioned into breach.
    pub breaches: u64,
}

/// Snapshot of an [`SloTracker`]: the `slo` section of `BenchReport`
/// and the body `/healthz` explains itself with.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSummary {
    /// Window/threshold configuration the burn rates were computed under.
    pub config: BurnConfig,
    /// Ticks evaluated.
    pub ticks: u64,
    /// `false` if any objective is in breach.
    pub healthy: bool,
    /// Per-objective state.
    pub objectives: Vec<ObjectiveSummary>,
}

impl SloSummary {
    /// Serializes with stable key order (counts and config only — every
    /// field is deterministic for a seeded run, so the whole section is
    /// structural and survives `strip_timings`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "config".into(),
                Json::Obj(vec![
                    (
                        "fast_window".into(),
                        Json::uint(self.config.fast_window as u64),
                    ),
                    (
                        "slow_window".into(),
                        Json::uint(self.config.slow_window as u64),
                    ),
                    ("fast_burn".into(), Json::num(self.config.fast_burn)),
                    ("slow_burn".into(), Json::num(self.config.slow_burn)),
                ]),
            ),
            ("ticks".into(), Json::uint(self.ticks)),
            ("healthy".into(), Json::Bool(self.healthy)),
            (
                "objectives".into(),
                Json::Arr(
                    self.objectives
                        .iter()
                        .map(|o| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(o.name.clone())),
                                ("budget".into(), Json::num(o.budget)),
                                ("good".into(), Json::uint(o.good)),
                                ("bad".into(), Json::uint(o.bad)),
                                ("fast_burn".into(), Json::num(o.fast_burn)),
                                ("slow_burn".into(), Json::num(o.slow_burn)),
                                ("breached".into(), Json::Bool(o.breached)),
                                ("breaches".into(), Json::uint(o.breaches)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Cumulative (good, bad) counter reader for one [`SloGuard`] objective.
pub type Sampler = Box<dyn Fn() -> (u64, u64) + Send + Sync>;

struct GuardState {
    tracker: SloTracker,
    /// Last cumulative (good, bad) seen per sampler, for delta feeding.
    last: Vec<(u64, u64)>,
    last_tick: Instant,
}

/// Wall-clock adapter over [`SloTracker`] for live servers.
///
/// Each objective is paired with a sampler returning *cumulative*
/// (good, bad) counters (typically reads of the server's atomics); the
/// guard diffs consecutive samples into tracker observations and
/// advances one tick per elapsed `tick_interval`. All state sits behind
/// one mutex — `healthy()` is called from the scrape path, never the
/// serving hot path.
pub struct SloGuard {
    tick_interval: Duration,
    samplers: Vec<Sampler>,
    state: Mutex<GuardState>,
}

impl SloGuard {
    /// A guard ticking every `tick_interval`, sampling each objective's
    /// cumulative counters from the paired closure.
    pub fn new(
        config: BurnConfig,
        tick_interval: Duration,
        objectives: Vec<(Objective, Sampler)>,
    ) -> Self {
        assert!(!tick_interval.is_zero(), "tick interval must be positive");
        let (objectives, samplers): (Vec<_>, Vec<_>) = objectives.into_iter().unzip();
        let last = samplers.iter().map(|s| s()).collect();
        Self {
            tick_interval,
            samplers,
            state: Mutex::new(GuardState {
                tracker: SloTracker::new(config, objectives),
                last,
                last_tick: Instant::now(),
            }),
        }
    }

    /// Samples counters, advances any elapsed ticks, and reports
    /// health. At most `slow_window` ticks are replayed per call, so a
    /// long-idle guard cannot stall a scrape.
    pub fn healthy(&self) -> bool {
        self.advance();
        self.state
            .lock()
            .expect("slo guard poisoned")
            .tracker
            .healthy()
    }

    /// Current summary (also advances elapsed ticks).
    pub fn summary(&self) -> SloSummary {
        self.advance();
        self.state
            .lock()
            .expect("slo guard poisoned")
            .tracker
            .summary()
    }

    fn advance(&self) {
        let mut state = self.state.lock().expect("slo guard poisoned");
        for (idx, sampler) in self.samplers.iter().enumerate() {
            let (good, bad) = sampler();
            let (last_good, last_bad) = state.last[idx];
            state.last[idx] = (good, bad);
            state.tracker.observe(
                idx,
                good.saturating_sub(last_good),
                bad.saturating_sub(last_bad),
            );
        }
        let mut elapsed = state.last_tick.elapsed();
        let cap = state.tracker.config.slow_window as u32;
        let mut ticks = 0u32;
        while elapsed >= self.tick_interval && ticks < cap {
            state.tracker.tick();
            elapsed -= self.tick_interval;
            ticks += 1;
        }
        if ticks > 0 {
            state.last_tick = Instant::now() - elapsed.min(self.tick_interval);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn config() -> BurnConfig {
        // Tiny windows for test speed; the slow threshold is set so one
        // all-bad tick in a 9-tick window (frac 1/9) cannot reach it at
        // a 0.10 budget, while sustained burn sails past.
        BurnConfig {
            fast_window: 3,
            slow_window: 9,
            fast_burn: 2.0,
            slow_burn: 2.0,
        }
    }

    #[test]
    fn clean_traffic_never_breaches() {
        let mut t = SloTracker::new(config(), vec![Objective::new("errors", 0.05)]);
        for _ in 0..20 {
            t.observe(0, 100, 1);
            t.tick();
        }
        assert!(t.healthy());
        let s = t.summary();
        assert_eq!(s.objectives[0].breaches, 0);
        assert_eq!(s.objectives[0].good, 2000);
        assert_eq!(s.objectives[0].bad, 20);
    }

    #[test]
    fn sustained_burn_breaches_and_recovers() {
        let mut t = SloTracker::new(config(), vec![Objective::new("shed", 0.05)]);
        // Healthy warm-up.
        for _ in 0..9 {
            t.observe(0, 100, 0);
            t.tick();
        }
        assert!(t.healthy());
        // Sustained 50% shedding: burn = 10x budget in both windows once
        // the slow window accumulates enough bad ticks.
        let mut breached_at = None;
        for i in 0..9 {
            t.observe(0, 50, 50);
            t.tick();
            if !t.healthy() && breached_at.is_none() {
                breached_at = Some(i);
            }
        }
        assert!(breached_at.is_some(), "sustained burn must breach");
        assert!(t.summary().objectives[0].breaches >= 1);
        // Recovery: clean ticks push the fires out of both windows.
        for _ in 0..10 {
            t.observe(0, 100, 0);
            t.tick();
        }
        assert!(t.healthy(), "breach must clear after windows drain");
    }

    #[test]
    fn short_spike_does_not_breach() {
        let mut t = SloTracker::new(config(), vec![Objective::new("errors", 0.10)]);
        for _ in 0..9 {
            t.observe(0, 100, 0);
            t.tick();
        }
        // One bad tick lights the fast window but not the slow one.
        t.observe(0, 0, 100);
        t.tick();
        assert!(
            t.healthy(),
            "single-tick spike must not satisfy the slow window"
        );
        assert_eq!(t.summary().objectives[0].breaches, 0);
    }

    #[test]
    fn summary_is_deterministic_and_structural() {
        let run = || {
            let mut t = SloTracker::new(
                config(),
                vec![Objective::new("a", 0.05), Objective::new("b", 0.2)],
            );
            for i in 0..15u64 {
                t.observe(0, 90 + i, i % 3);
                t.observe(1, 50, i % 5);
                t.tick();
            }
            t.summary().to_json().to_pretty_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn guard_degrades_on_cumulative_bad_counters() {
        let good = Arc::new(AtomicU64::new(0));
        let bad = Arc::new(AtomicU64::new(0));
        let (g, b) = (Arc::clone(&good), Arc::clone(&bad));
        let guard = SloGuard::new(
            config(),
            Duration::from_millis(1),
            vec![(
                Objective::new("shed", 0.05),
                Box::new(move || (g.load(Ordering::Relaxed), b.load(Ordering::Relaxed))) as Sampler,
            )],
        );
        assert!(guard.healthy());
        // Burn hard across enough wall ticks for both windows.
        for _ in 0..12 {
            good.fetch_add(10, Ordering::Relaxed);
            bad.fetch_add(90, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(2));
            guard.healthy();
        }
        assert!(!guard.healthy(), "sustained shedding must degrade health");
        let summary = guard.summary();
        assert!(summary.objectives[0].bad >= 90 * 12);
        assert!(!summary.healthy);
    }
}
