//! `BENCH_*.json` — the scenario harness's machine-readable report format.
//!
//! The workspace is built offline (no crates.io), so there is no serde;
//! this module hand-rolls the small JSON subset the harness needs: an
//! order-preserving value type ([`Json`]), a writer with strict escaping
//! and non-finite-float demotion, and a parser used by the round-trip
//! tests and the CLI's post-write self-check.
//!
//! Two invariants matter more than generality:
//!
//! 1. **No `NaN`/`inf` ever reaches the file.** JSON has no spelling for
//!    them, and a single `NaN` silently poisons every downstream consumer.
//!    [`Json::num`] demotes non-finite floats to `null`, and
//!    [`BenchReport::validate`] rejects reports whose recall/latency
//!    fields are not finite numbers.
//! 2. **Byte-stable output.** Keys are written in insertion order and
//!    floats through Rust's shortest-round-trip formatter, so two runs
//!    that produce equal values produce equal bytes — which is what lets
//!    the determinism tests compare reports textually after
//!    [`strip_timings`] removes the wall-clock fields.

use crate::latency::LatencySummary;
use crate::profile::QueryProfile;
use crate::slo::SloSummary;
use crate::ReplicaStats;
use crate::TransportStats;
use std::fmt::Write as _;

/// Schema version stamped into every report; bump on breaking changes.
/// Version 2 added the required `trace` key (span-count breakdown);
/// version 3 added the required `admission` key (admission-control
/// counters, `null` for scenarios with no admission policy); version 4
/// added the required `profile` key (structural per-query cost counters
/// summed over the run — see [`crate::profile::QueryProfile`]) and the
/// required `slo` key (burn-rate objective summary, `null` for runs
/// with no objectives).
pub const SCHEMA_VERSION: u64 = 4;

/// Top-level keys every `BENCH_*.json` must carry.
pub const REQUIRED_KEYS: [&str; 16] = [
    "schema_version",
    "scenario",
    "seed",
    "topology",
    "config",
    "queries",
    "qps",
    "latency_ms",
    "recall",
    "cache",
    "admission",
    "trace",
    "profile",
    "slo",
    "mutations",
    "tenants",
];

/// An order-preserving JSON value.
///
/// Objects keep key insertion order (a `Vec` of pairs, not a map): the
/// report schema is small, and stable ordering is what makes the emitted
/// bytes reproducible.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer written without a decimal point.
    Int(i64),
    /// A finite float; construct via [`Json::num`] to enforce finiteness.
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            // Numeric equality crosses the Int/Num divide: the writer may
            // print `Num(1.0)` as `1`, which parses back as `Int(1)`.
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Int(a), Json::Num(b)) | (Json::Num(b), Json::Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl Json {
    /// A float value; non-finite inputs become `null` so `NaN`/`inf` can
    /// never reach the serialized file.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// An integer value from any unsigned counter.
    pub fn uint(v: u64) -> Json {
        debug_assert!(v <= i64::MAX as u64, "counter overflows JSON integer");
        Json::Int(v as i64)
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (`Int` or `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the JSON-lines
    /// form trace exports use (one document per line, no trailing
    /// newline; the caller appends it).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    if *v == v.trunc() && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation; integral floats
                    // gain a ".0" so they stay visually floats.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module writes, plus
    /// arbitrary whitespace and `\u` escapes).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free run in one step.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at offset {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Json::Num(v))
    }
}

/// Keys whose values are wall-clock measurements and therefore excluded
/// from the determinism comparison. `stage_ms` (the trace summary's
/// per-stage latency breakdown) and `elapsed_ns` (per-span durations in
/// exported traces) are measurements too; the span *counts* stay.
pub const TIMING_KEYS: [&str; 5] = [
    "qps",
    "wall_seconds",
    "latency_ms",
    "stage_ms",
    "elapsed_ns",
];

/// Returns a copy of `json` with every timing-valued key (see
/// [`TIMING_KEYS`]) removed, recursively. Comparing two stripped reports
/// checks exactly the fields that must reproduce for a fixed seed and
/// topology: counts, recall, cache/failover/transport counters.
pub fn strip_timings(json: &Json) -> Json {
    match json {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !TIMING_KEYS.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), strip_timings(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timings).collect()),
        other => other.clone(),
    }
}

/// Query-cache counters in report form (mirror of the serving layer's
/// cache stats; `metrics` cannot depend on `serving`, so the runner copies
/// the three counts across).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Cacheable lookups that missed.
    pub misses: u64,
    /// Requests that bypassed the cache entirely.
    pub uncacheable: u64,
}

impl CacheSummary {
    /// Hit fraction over cacheable lookups; `0.0` when none were seen.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Admission-control outcomes for a scenario run under an overload
/// policy. Every counter is structural (virtual-time in the harness):
/// a fixed seed and policy must reproduce all five exactly, which is
/// what lets CI diff shed/retry behavior across commits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionSummary {
    /// Query arrivals presented to admission control (first attempts).
    pub submitted: u64,
    /// Requests admitted and executed.
    pub admitted: u64,
    /// Requests answered `Overloaded` with no retries left.
    pub shed: u64,
    /// Shed requests that re-arrived for another attempt.
    pub retried: u64,
    /// Deepest admission queue observed.
    pub max_depth: u64,
}

impl AdmissionSummary {
    /// Report form, insertion-ordered.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("submitted".into(), Json::uint(self.submitted)),
            ("admitted".into(), Json::uint(self.admitted)),
            ("shed".into(), Json::uint(self.shed)),
            ("retried".into(), Json::uint(self.retried)),
            ("max_depth".into(), Json::uint(self.max_depth)),
        ])
    }
}

/// Mutation-stream totals for a scenario run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationSummary {
    /// Vectors inserted during the run.
    pub inserts: u64,
    /// Vectors deleted during the run.
    pub deletes: u64,
    /// Final index generation (0 when the corpus never changed).
    pub generation: u64,
}

/// Per-tenant accounting for multi-tenant scenario streams.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant identifier from the workload spec.
    pub tenant: u32,
    /// Queries issued by this tenant.
    pub queries: u64,
    /// Latency distribution over this tenant's queries.
    pub latency: LatencySummary,
}

/// Aggregated trace-plane accounting for a scenario run.
///
/// The span *counts* are structural — a fixed seed and topology must
/// reproduce them exactly — while `stage_ms` holds wall-clock per-stage
/// totals and is stripped by [`strip_timings`] alongside the other
/// timing fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Query events that carried a trace context.
    pub traces: u64,
    /// Spans lost to ring-buffer overwrite (0 when the ring was sized to
    /// the workload).
    pub dropped: u64,
    /// Span counts by taxonomy name (`cache_lookup`, `route`, ...), in
    /// span-code order. Names with zero spans are omitted.
    pub span_counts: Vec<(String, u64)>,
    /// Total in-span milliseconds by taxonomy name, same order as
    /// `span_counts` (timing; stripped for determinism checks).
    pub stage_ms: Vec<(String, f64)>,
}

/// Everything a scenario run reports; serialized as `BENCH_<scenario>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Scenario name (`steady_zipf`, `fault_storm`, ...).
    pub scenario: String,
    /// Workload seed; same seed + topology ⇒ same non-timing fields.
    pub seed: u64,
    /// Topology label, e.g. `sharded:4+cache:256`.
    pub topology: String,
    /// Scenario knobs worth echoing (key → value), in insertion order.
    pub config: Vec<(String, Json)>,
    /// Total query events executed.
    pub queries: u64,
    /// Wall-clock seconds over the query phase (timing; stripped for
    /// determinism checks).
    pub wall_seconds: f64,
    /// Queries per second (timing).
    pub qps: f64,
    /// Latency distribution over all queries (timing).
    pub latency: LatencySummary,
    /// `k` used for recall measurement.
    pub k: usize,
    /// Queries on which recall was measured against the brute-force oracle.
    pub recall_samples: u64,
    /// Mean recall@k over the sampled queries.
    pub recall_at_k: f64,
    /// Cache counters, when the topology includes a `QueryCache`.
    pub cache: Option<CacheSummary>,
    /// Failover counters, when the topology is replicated. The stats'
    /// `latency_ns` field is wall-clock and is *not* serialized.
    pub failover: Option<ReplicaStats>,
    /// Transport counters, when the topology is remote.
    pub transport: Option<TransportStats>,
    /// Admission-control counters, when the scenario ran under an
    /// overload policy.
    pub admission: Option<AdmissionSummary>,
    /// Trace-plane aggregates, when the run recorded spans.
    pub trace: Option<TraceSummary>,
    /// Structural cost counters summed over every executed query.
    /// Deterministic per (seed, topology): [`strip_timings`] keeps the
    /// whole section and the harness asserts byte-identity on it.
    pub profile: QueryProfile,
    /// Burn-rate objective summary, when the run tracked SLOs.
    pub slo: Option<SloSummary>,
    /// Mutation totals.
    pub mutations: MutationSummary,
    /// Per-tenant accounting, ordered by tenant id.
    pub tenants: Vec<TenantSummary>,
}

fn latency_json(l: &LatencySummary) -> Json {
    Json::Obj(vec![
        ("samples".into(), Json::uint(l.samples as u64)),
        ("mean".into(), Json::num(l.mean_ms)),
        ("p50".into(), Json::num(l.p50_ms)),
        ("p95".into(), Json::num(l.p95_ms)),
        ("p99".into(), Json::num(l.p99_ms)),
        ("p999".into(), Json::num(l.p999_ms)),
        ("max".into(), Json::num(l.max_ms)),
    ])
}

impl BenchReport {
    /// Lowers the report to its JSON form with a stable key order.
    pub fn to_json(&self) -> Json {
        let cache = match &self.cache {
            Some(c) => Json::Obj(vec![
                ("hits".into(), Json::uint(c.hits)),
                ("misses".into(), Json::uint(c.misses)),
                ("uncacheable".into(), Json::uint(c.uncacheable)),
                ("hit_rate".into(), Json::num(c.hit_rate())),
            ]),
            None => Json::Null,
        };
        let failover = self
            .failover
            .as_ref()
            .map_or(Json::Null, ReplicaStats::to_json);
        let transport = self
            .transport
            .as_ref()
            .map_or(Json::Null, TransportStats::to_json);
        let admission = self
            .admission
            .as_ref()
            .map_or(Json::Null, AdmissionSummary::to_json);
        let trace = match &self.trace {
            Some(t) => Json::Obj(vec![
                ("traces".into(), Json::uint(t.traces)),
                ("dropped".into(), Json::uint(t.dropped)),
                (
                    "spans".into(),
                    Json::Obj(
                        t.span_counts
                            .iter()
                            .map(|(name, n)| (name.clone(), Json::uint(*n)))
                            .collect(),
                    ),
                ),
                (
                    "stage_ms".into(),
                    Json::Obj(
                        t.stage_ms
                            .iter()
                            .map(|(name, ms)| (name.clone(), Json::num(*ms)))
                            .collect(),
                    ),
                ),
            ]),
            None => Json::Null,
        };
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("tenant".into(), Json::uint(u64::from(t.tenant))),
                    ("queries".into(), Json::uint(t.queries)),
                    ("latency_ms".into(), latency_json(&t.latency)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::uint(SCHEMA_VERSION)),
            ("scenario".into(), Json::str(&self.scenario)),
            ("seed".into(), Json::uint(self.seed)),
            ("topology".into(), Json::str(&self.topology)),
            ("config".into(), Json::Obj(self.config.clone())),
            ("queries".into(), Json::uint(self.queries)),
            ("wall_seconds".into(), Json::num(self.wall_seconds)),
            ("qps".into(), Json::num(self.qps)),
            ("latency_ms".into(), latency_json(&self.latency)),
            (
                "recall".into(),
                Json::Obj(vec![
                    ("k".into(), Json::uint(self.k as u64)),
                    ("samples".into(), Json::uint(self.recall_samples)),
                    ("recall_at_k".into(), Json::num(self.recall_at_k)),
                ]),
            ),
            ("cache".into(), cache),
            ("failover".into(), failover),
            ("transport".into(), transport),
            ("admission".into(), admission),
            ("trace".into(), trace),
            ("profile".into(), self.profile.to_json()),
            (
                "slo".into(),
                self.slo.as_ref().map_or(Json::Null, SloSummary::to_json),
            ),
            (
                "mutations".into(),
                Json::Obj(vec![
                    ("inserts".into(), Json::uint(self.mutations.inserts)),
                    ("deletes".into(), Json::uint(self.mutations.deletes)),
                    ("generation".into(), Json::uint(self.mutations.generation)),
                ]),
            ),
            ("tenants".into(), Json::Arr(tenants)),
        ])
    }

    /// Serializes the report; this is the exact file content of
    /// `BENCH_<scenario>.json`.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Checks that a parsed report carries every required key and that its
    /// recall/latency fields are finite numbers (never `null`, `NaN`, or a
    /// string). Used by the CLI's post-write self-check and by CI.
    pub fn validate(json: &Json) -> Result<(), String> {
        if !matches!(json, Json::Obj(_)) {
            return Err("report is not a JSON object".into());
        }
        for key in REQUIRED_KEYS {
            if json.get(key).is_none() {
                return Err(format!("missing required key '{key}'"));
            }
        }
        let finite = |v: Option<&Json>, what: &str| -> Result<(), String> {
            match v.and_then(Json::as_f64) {
                Some(x) if x.is_finite() => Ok(()),
                _ => Err(format!("{what} is not a finite number")),
            }
        };
        let recall = json.get("recall").unwrap();
        finite(recall.get("recall_at_k"), "recall.recall_at_k")?;
        let latency = json.get("latency_ms").unwrap();
        for p in ["mean", "p50", "p95", "p99", "p999", "max"] {
            finite(latency.get(p), &format!("latency_ms.{p}"))?;
        }
        finite(json.get("qps"), "qps")?;
        if json.get("schema_version").and_then(Json::as_u64) != Some(SCHEMA_VERSION) {
            return Err(format!("schema_version is not {SCHEMA_VERSION}"));
        }
        let profile = json.get("profile").unwrap();
        QueryProfile::from_json(profile)
            .ok_or_else(|| "profile is not a complete QueryProfile object".to_string())?;
        json.get("tenants")
            .and_then(Json::as_arr)
            .ok_or_else(|| "tenants is not an array".to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            scenario: "steady_zipf".into(),
            seed: 42,
            topology: "sharded:4+cache:256".into(),
            config: vec![
                ("base_n".into(), Json::uint(4000)),
                ("zipf_exponent".into(), Json::num(1.1)),
            ],
            queries: 3000,
            wall_seconds: 1.25,
            qps: 2400.0,
            latency: crate::latency_summary(&[0.4, 0.6, 0.9, 1.4]),
            k: 10,
            recall_samples: 128,
            recall_at_k: 0.971,
            cache: Some(CacheSummary {
                hits: 1200,
                misses: 1700,
                uncacheable: 100,
            }),
            failover: None,
            transport: None,
            admission: Some(AdmissionSummary {
                submitted: 3000,
                admitted: 2900,
                shed: 100,
                retried: 40,
                max_depth: 17,
            }),
            trace: Some(TraceSummary {
                traces: 3000,
                dropped: 0,
                span_counts: vec![("cache_lookup".into(), 3000), ("gather".into(), 3000)],
                stage_ms: vec![("cache_lookup".into(), 1.5), ("gather".into(), 40.25)],
            }),
            profile: QueryProfile {
                hops_upper: 9000,
                hops_base: 51000,
                dist_coded: 720000,
                dist_exact: 120000,
                rows_scored: 60000,
                codeword_bytes: 12288000,
                visited_inserts: 630000,
                rerank_pool: 120000,
                scratch_checkouts: 3000,
            },
            slo: Some({
                let mut tracker = crate::SloTracker::new(
                    crate::BurnConfig::default(),
                    vec![crate::Objective::new("shed_fraction", 0.05)],
                );
                tracker.observe(0, 2900, 100);
                tracker.tick();
                tracker.summary()
            }),
            mutations: MutationSummary::default(),
            tenants: vec![TenantSummary {
                tenant: 0,
                queries: 3000,
                latency: crate::latency_summary(&[0.4, 0.6]),
            }],
        }
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{0001} unicode é 🦀";
        let json = Json::Obj(vec![("k".into(), Json::str(nasty))]);
        let text = json.to_pretty_string();
        assert!(!text.contains('\u{0001}'), "control char must be escaped");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("k").unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let back = Json::parse(r#""🦀 ok""#).unwrap();
        assert_eq!(back, Json::str("🦀 ok"));
    }

    #[test]
    fn non_finite_floats_become_null_not_nan() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NEG_INFINITY), Json::Null);
        let mut report = sample_report();
        report.qps = f64::NAN;
        report.recall_at_k = f64::INFINITY;
        let text = report.to_pretty_string();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        // ... and validation refuses the resulting nulls.
        let parsed = Json::parse(&text).unwrap();
        assert!(BenchReport::validate(&parsed).is_err());
    }

    #[test]
    fn report_round_trip_is_stable() {
        let report = sample_report();
        let text = report.to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, report.to_json());
        // Serialize → parse → serialize reproduces the bytes exactly.
        assert_eq!(parsed.to_pretty_string(), text);
        BenchReport::validate(&parsed).unwrap();
    }

    #[test]
    fn validate_requires_every_key() {
        let json = sample_report().to_json();
        BenchReport::validate(&json).unwrap();
        for key in REQUIRED_KEYS {
            let Json::Obj(pairs) = &json else {
                unreachable!()
            };
            let without = Json::Obj(pairs.iter().filter(|(k, _)| k != key).cloned().collect());
            assert!(
                BenchReport::validate(&without).is_err(),
                "dropping '{key}' should fail validation"
            );
        }
    }

    #[test]
    fn strip_timings_removes_exactly_the_wall_clock_fields() {
        let json = sample_report().to_json();
        let stripped = strip_timings(&json);
        assert!(stripped.get("qps").is_none());
        assert!(stripped.get("wall_seconds").is_none());
        assert!(stripped.get("latency_ms").is_none());
        // Tenant latency goes too, but counts stay.
        let tenant = &stripped.get("tenants").unwrap().as_arr().unwrap()[0];
        assert!(tenant.get("latency_ms").is_none());
        assert_eq!(tenant.get("queries").unwrap().as_u64(), Some(3000));
        assert_eq!(stripped.get("queries").unwrap().as_u64(), Some(3000));
        assert!(stripped.get("recall").is_some());
        assert!(stripped.get("cache").is_some());
        // Admission counters are structural: all five survive the strip.
        let admission = stripped.get("admission").unwrap();
        assert_eq!(admission.get("shed").unwrap().as_u64(), Some(100));
        assert_eq!(admission.get("retried").unwrap().as_u64(), Some(40));
        // The trace summary keeps its structural span counts but loses
        // the per-stage wall-clock breakdown.
        let trace = stripped.get("trace").unwrap();
        assert!(trace.get("stage_ms").is_none());
        assert_eq!(
            trace.get("spans").unwrap().get("gather").unwrap().as_u64(),
            Some(3000)
        );
        assert_eq!(trace.get("traces").unwrap().as_u64(), Some(3000));
        // The whole profile section is structural and survives intact.
        let profile = stripped.get("profile").unwrap();
        assert_eq!(
            QueryProfile::from_json(profile),
            Some(sample_report().profile)
        );
        // SLO counts and burn state are structural too.
        let slo = stripped.get("slo").unwrap();
        assert_eq!(slo.get("ticks").unwrap().as_u64(), Some(1));
        assert!(slo.get("healthy").is_some());
    }

    #[test]
    fn compact_form_is_one_line_and_round_trips() {
        let json = sample_report().to_json();
        let compact = json.to_compact_string();
        assert!(!compact.contains('\n'), "compact form must be one line");
        assert!(!compact.contains(": "), "no space after separators");
        let back = Json::parse(&compact).unwrap();
        assert_eq!(back, json);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("1e999").is_err(), "overflowing number");
    }

    #[test]
    fn integers_and_floats_compare_across_forms() {
        assert_eq!(Json::Int(3), Json::Num(3.0));
        assert_ne!(Json::Int(3), Json::Num(3.5));
        let text = Json::Num(2.0).to_pretty_string();
        assert_eq!(text.trim(), "2.0");
    }
}
