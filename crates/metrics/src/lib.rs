//! Evaluation metrics for the experiment harness (paper Section 4.1.4).
//!
//! * [`recall`] — `Recall = |G ∩ S| / k` against exact ground truth;
//! * [`adr`] — the average distance ratio of retrieved vs. true neighbors;
//! * [`qps`] — queries-per-second / latency measurement;
//! * [`latency`] — percentile summaries (p50/p95/p99) for serving reports;
//! * [`failover`] — per-replica retry/mark-down/probe counters for the
//!   replicated serving layer;
//! * [`transport`] — per-node frame/byte/timeout counters for the
//!   distributed serving wire transports;
//! * [`report`] — the hand-rolled `BENCH_*.json` writer/parser backing the
//!   scenario harness's perf trajectory;
//! * [`trace`] — deterministic per-request tracing: trace contexts, typed
//!   spans, and the lock-free span ring the serving layers record into;
//! * [`registry`] — the process-wide named counter/gauge/histogram
//!   registry, snapshot-able as [`Json`];
//! * [`openmetrics`] — OpenMetrics text exposition for the registry
//!   (the `/metrics` scrape body);
//! * [`profile`] — per-query structural cost counters ([`QueryProfile`]):
//!   hops, coded/exact distance evals, rows scored, codeword bytes;
//! * [`slo`] — windowed error-budget objectives with fast/slow
//!   multi-window burn-rate breach detection;
//! * [`PhaseTimer`] — named wall-clock phases for indexing-time breakdowns.

pub mod adr;
pub mod failover;
pub mod latency;
pub mod openmetrics;
pub mod profile;
pub mod qps;
pub mod recall;
pub mod registry;
pub mod report;
pub mod slo;
mod timer;
pub mod trace;
pub mod transport;

pub use adr::average_distance_ratio;
pub use failover::{failover_summary, ReplicaCounters, ReplicaStats};
pub use latency::{latency_summary, LatencySummary};
pub use profile::QueryProfile;
pub use qps::{measure_qps, QpsReport};
pub use recall::{recall_at_k, RecallReport};
pub use registry::{Counter, Gauge, Log2Histogram, MetricsRegistry};
pub use report::{
    strip_timings, AdmissionSummary, BenchReport, CacheSummary, Json, MutationSummary,
    TenantSummary, TraceSummary, TIMING_KEYS,
};
pub use slo::{BurnConfig, Objective, ObjectiveSummary, SloGuard, SloSummary, SloTracker};
pub use timer::PhaseTimer;
pub use trace::{
    collect_traces, trace_id_for, trace_to_json, SpanKind, SpanOutcome, SpanRecord, SpanRing,
    TraceContext,
};
pub use transport::{transport_summary, TransportCounters, TransportStats};
