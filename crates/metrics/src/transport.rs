//! Per-node transport accounting for the distributed serving layer.
//!
//! Every wire transport (`serving::distributed`) owns one
//! [`TransportCounters`]: lock-free monotonic counters bumped as frames
//! and bytes move, connections are (re-)dialed, and calls fail or time
//! out. [`TransportStats`] is the plain-data snapshot
//! ([`TransportCounters::snapshot`]); [`transport_summary`] folds many
//! nodes' snapshots into one aggregate for the serving summary line.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free monotonic counters for one transport endpoint.
#[derive(Debug, Default)]
pub struct TransportCounters {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    reconnects: AtomicU64,
}

impl TransportCounters {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// One frame of `bytes` bytes was sent.
    pub fn record_sent(&self, bytes: u64) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// One frame of `bytes` bytes was received.
    pub fn record_received(&self, bytes: u64) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A call failed (connect refused, I/O error, undecodable frame).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A call exceeded its deadline (counted *in addition* to
    /// [`Self::record_error`] by transports that treat timeouts as
    /// failures).
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was (re-)established after the initial dial.
    pub fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-data snapshot of every counter.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one endpoint's transport counters (also used, summed, as a
/// per-coordinator aggregate — see [`transport_summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames written to the wire.
    pub frames_sent: u64,
    /// Frames read off the wire.
    pub frames_received: u64,
    /// Payload + header bytes written.
    pub bytes_sent: u64,
    /// Payload + header bytes read.
    pub bytes_received: u64,
    /// Failed calls (connect refused, I/O errors, undecodable frames).
    pub errors: u64,
    /// Calls that exceeded their deadline.
    pub timeouts: u64,
    /// Connections re-established after the initial dial.
    pub reconnects: u64,
}

impl TransportStats {
    /// Element-wise sum with `other`.
    pub fn merged(self, other: TransportStats) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent + other.frames_sent,
            frames_received: self.frames_received + other.frames_received,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            errors: self.errors + other.errors,
            timeouts: self.timeouts + other.timeouts,
            reconnects: self.reconnects + other.reconnects,
        }
    }

    /// JSON form with every counter, in declaration order.
    pub fn to_json(&self) -> crate::Json {
        crate::Json::Obj(vec![
            ("frames_sent".into(), crate::Json::uint(self.frames_sent)),
            (
                "frames_received".into(),
                crate::Json::uint(self.frames_received),
            ),
            ("bytes_sent".into(), crate::Json::uint(self.bytes_sent)),
            (
                "bytes_received".into(),
                crate::Json::uint(self.bytes_received),
            ),
            ("errors".into(), crate::Json::uint(self.errors)),
            ("timeouts".into(), crate::Json::uint(self.timeouts)),
            ("reconnects".into(), crate::Json::uint(self.reconnects)),
        ])
    }
}

/// Folds per-node snapshots into one aggregate (element-wise sums).
pub fn transport_summary(stats: &[TransportStats]) -> TransportStats {
    stats
        .iter()
        .fold(TransportStats::default(), |acc, s| acc.merged(*s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = TransportCounters::new();
        c.record_sent(100);
        c.record_sent(50);
        c.record_received(75);
        c.record_error();
        c.record_timeout();
        c.record_reconnect();
        let s = c.snapshot();
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.frames_received, 1);
        assert_eq!(s.bytes_received, 75);
        assert_eq!(s.errors, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.reconnects, 1);
    }

    #[test]
    fn summary_sums_elementwise() {
        let a = TransportStats {
            frames_sent: 2,
            frames_received: 2,
            bytes_sent: 10,
            bytes_received: 20,
            errors: 1,
            timeouts: 0,
            reconnects: 0,
        };
        let b = TransportStats {
            frames_sent: 3,
            frames_received: 1,
            bytes_sent: 5,
            bytes_received: 8,
            errors: 0,
            timeouts: 2,
            reconnects: 1,
        };
        let sum = transport_summary(&[a, b]);
        assert_eq!(sum.frames_sent, 5);
        assert_eq!(sum.frames_received, 3);
        assert_eq!(sum.bytes_sent, 15);
        assert_eq!(sum.bytes_received, 28);
        assert_eq!(sum.errors, 1);
        assert_eq!(sum.timeouts, 2);
        assert_eq!(sum.reconnects, 1);
        assert_eq!(transport_summary(&[]), TransportStats::default());
    }
}
