//! OpenMetrics text exposition for [`crate::MetricsRegistry`].
//!
//! Renders the registry as the OpenMetrics text format scraped by
//! Prometheus-compatible collectors: one family per metric with
//! `# TYPE` / `# HELP` headers, counters suffixed `_total`,
//! [`crate::Log2Histogram`]s expanded into cumulative `le` buckets plus
//! `_sum`/`_count`, and JSON snapshot sources flattened into gauge
//! families one path segment at a time. Families are emitted in
//! lexicographic name order, so equal registry state renders equal
//! bytes — the same stability contract `BENCH_*.json` snapshots have.
//!
//! Dotted registry names (`serving.cache.hits`) become legal metric
//! names by mapping every character outside `[a-zA-Z0-9_:]` to `_`; the
//! `# HELP` line preserves the original dotted path so a scrape can be
//! mapped back to `/varz` keys by eye.

use crate::registry::Metric;
use crate::report::Json;
use std::fmt::Write;

/// Maps a dotted registry name onto the OpenMetrics name grammar.
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// One renderable family: a name, the original dotted path for `# HELP`,
/// and a typed sample set.
enum Family {
    Counter { value: u64 },
    Gauge { value: i64 },
    GaugeFloat { value: f64 },
    Histogram { buckets: Box<[u64; 65]>, sum: u64 },
}

fn push_family(out: &mut String, name: &str, help: &str, family: &Family) {
    match family {
        Family::Counter { value } => {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "{name}_total {value}");
        }
        Family::Gauge { value } => {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "{name} {value}");
        }
        Family::GaugeFloat { value } => {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "{name} {value}");
        }
        Family::Histogram { buckets, sum } => {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let _ = writeln!(out, "# HELP {name} {help}");
            // Cumulative `le` buckets. Log2 bucket 0 holds zeros (upper
            // bound 0); bucket i >= 1 holds [2^(i-1), 2^i), upper bound
            // 2^i - 1. Empty tail buckets collapse into +Inf.
            let highest = buckets
                .iter()
                .rposition(|&n| n != 0)
                .map(|i| i + 1)
                .unwrap_or(0);
            let mut cumulative = 0u64;
            for (i, &n) in buckets.iter().enumerate().take(highest) {
                cumulative += n;
                let upper = if i == 0 {
                    "0".to_string()
                } else if i == 64 {
                    u64::MAX.to_string()
                } else {
                    ((1u128 << i) - 1).to_string()
                };
                let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let total: u64 = buckets.iter().sum();
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "{name}_sum {sum}");
            let _ = writeln!(out, "{name}_count {total}");
        }
    }
}

/// Flattens a JSON snapshot-source value into gauge families, one per
/// numeric leaf; non-numeric leaves (strings, nulls) and arrays are
/// skipped — they have no OpenMetrics representation.
fn flatten_source(families: &mut Vec<(String, String, Family)>, name: &str, path: &str, v: &Json) {
    match v {
        Json::Int(i) => families.push((
            sanitize_name(name),
            path.to_string(),
            Family::Gauge { value: *i },
        )),
        Json::Num(f) => families.push((
            sanitize_name(name),
            path.to_string(),
            Family::GaugeFloat { value: *f },
        )),
        Json::Bool(b) => families.push((
            sanitize_name(name),
            path.to_string(),
            Family::Gauge {
                value: i64::from(*b),
            },
        )),
        Json::Obj(pairs) => {
            for (key, child) in pairs {
                flatten_source(
                    families,
                    &format!("{name}.{key}"),
                    &format!("{path}.{key}"),
                    child,
                );
            }
        }
        Json::Arr(_) | Json::Str(_) | Json::Null => {}
    }
}

/// Renders a typed registry snapshot (see
/// [`crate::MetricsRegistry::render_openmetrics`]). Runs entirely
/// outside the registry mutex; terminated by `# EOF`.
pub(crate) fn render_families(snapshot: Vec<(String, Metric)>) -> String {
    let mut families: Vec<(String, String, Family)> = Vec::new();
    for (name, metric) in snapshot {
        match metric {
            Metric::Counter(c) => families.push((
                sanitize_name(&name),
                name,
                Family::Counter { value: c.get() },
            )),
            Metric::Gauge(g) => {
                families.push((sanitize_name(&name), name, Family::Gauge { value: g.get() }))
            }
            Metric::Histogram(h) => families.push((
                sanitize_name(&name),
                name.clone(),
                Family::Histogram {
                    buckets: Box::new(h.bucket_loads()),
                    sum: h.sum(),
                },
            )),
            Metric::Source(f) => {
                let value = f();
                flatten_source(&mut families, &name, &name, &value);
            }
        }
    }
    families.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (name, help, family) in &families {
        push_family(&mut out, name, help, family);
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn sanitize_maps_to_the_openmetrics_grammar() {
        assert_eq!(sanitize_name("serving.cache.hits"), "serving_cache_hits");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn counters_gauges_and_sources_render_typed_families() {
        let reg = MetricsRegistry::new();
        reg.counter("t.frames").add(7);
        reg.gauge("t.depth").set(-3);
        reg.register_source("t.src", || {
            Json::Obj(vec![
                ("admitted".into(), Json::Int(5)),
                ("label".into(), Json::Str("skipped".into())),
                ("ratio".into(), Json::num(0.5)),
                ("ok".into(), Json::Bool(true)),
            ])
        });
        let text = reg.render_openmetrics();
        assert!(text.contains("# TYPE t_frames counter\n"));
        assert!(text.contains("# HELP t_frames t.frames\n"));
        assert!(text.contains("t_frames_total 7\n"));
        assert!(text.contains("# TYPE t_depth gauge\n"));
        assert!(text.contains("t_depth -3\n"));
        assert!(text.contains("t_src_admitted 5\n"));
        assert!(text.contains("t_src_ratio 0.5\n"));
        assert!(text.contains("t_src_ok 1\n"));
        assert!(!text.contains("skipped"), "string leaves are not rendered");
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn histograms_render_cumulative_le_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.lat");
        h.observe(0); // bucket 0: le="0"
        h.observe(1); // bucket 1: le="1"
        h.observe(3); // bucket 2: le="3"
        h.observe(3);
        let text = reg.render_openmetrics();
        assert!(text.contains("# TYPE t_lat histogram\n"));
        assert!(text.contains("t_lat_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("t_lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("t_lat_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("t_lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("t_lat_sum 7\n"));
        assert!(text.contains("t_lat_count 4\n"));
        // Cumulative counts must be monotone.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("t_lat_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn families_sort_lexicographically_and_render_stably() {
        let reg = MetricsRegistry::new();
        reg.counter("z.tail").inc();
        reg.counter("a.head").inc();
        reg.register_source("m.mid", || Json::Obj(vec![("v".into(), Json::Int(1))]));
        let a = reg.render_openmetrics();
        let b = reg.render_openmetrics();
        assert_eq!(a, b, "equal state must render equal bytes");
        let a_pos = a.find("a_head_total").unwrap();
        let m_pos = a.find("m_mid_v").unwrap();
        let z_pos = a.find("z_tail_total").unwrap();
        assert!(a_pos < m_pos && m_pos < z_pos);
    }
}
