//! Per-query structural cost profiles.
//!
//! A [`QueryProfile`] counts what a search *did* — graph hops, distance
//! evaluations, neighbor rows scored, codeword bytes touched — rather
//! than how long it took. Every field is a pure function of
//! `(index, query, parameters)`: no clocks, no sampling, no allocation.
//! That makes profiles the structural currency of the whole perf plane:
//! they survive `report::strip_timings`, reproduce byte-for-byte across
//! identically-seeded runs, and aggregate losslessly — a coordinator's
//! per-query profile is exactly the sum of the per-shard profiles it
//! gathered, and a node's cumulative profile is exactly the sum of the
//! per-query profiles it served.
//!
//! The counters are accumulated inside the search kernels' pooled
//! scratch state (`graphs::scratch`) with plain unconditional integer
//! adds — no branches, no feature flag, no allocation — so carrying
//! them costs nothing measurable on the hot path.

use crate::report::Json;

/// Field names in canonical (JSON and wire) order.
pub const PROFILE_FIELDS: [&str; 9] = [
    "hops_upper",
    "hops_base",
    "dist_coded",
    "dist_exact",
    "rows_scored",
    "codeword_bytes",
    "visited_inserts",
    "rerank_pool",
    "scratch_checkouts",
];

/// Structural cost counters for one query (or, summed, for any set of
/// queries: a batch, a shard fan-out, a node's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// Greedy-descent steps through the upper graph layers.
    pub hops_upper: u64,
    /// Beam expansions at the base layer.
    pub hops_base: u64,
    /// Distance evaluations against compressed codes (LUT lookups,
    /// scalar-quantized or projected comparisons).
    pub dist_coded: u64,
    /// Distance evaluations against full-precision vectors (baseline
    /// provider scoring, brute-force scans, exact rerank passes).
    pub dist_exact: u64,
    /// Neighbor rows scored as one block via `dist_to_neighbors`.
    pub rows_scored: u64,
    /// Bytes of codeword payload touched (`NodePayloads` reads and
    /// per-expansion payload rebuilds).
    pub codeword_bytes: u64,
    /// Fresh inserts into the visited set.
    pub visited_inserts: u64,
    /// Candidates fed to exact rerank passes.
    pub rerank_pool: u64,
    /// Pooled scratch checkouts consumed.
    pub scratch_checkouts: u64,
}

impl QueryProfile {
    /// The all-zero profile (`const` so it can seed thread-local cells).
    pub const fn new() -> Self {
        Self {
            hops_upper: 0,
            hops_base: 0,
            dist_coded: 0,
            dist_exact: 0,
            rows_scored: 0,
            codeword_bytes: 0,
            visited_inserts: 0,
            rerank_pool: 0,
            scratch_checkouts: 0,
        }
    }

    /// Element-wise accumulation (profiles aggregate by summation at
    /// every layer of the serving stack).
    pub fn add(&mut self, other: &QueryProfile) {
        self.hops_upper += other.hops_upper;
        self.hops_base += other.hops_base;
        self.dist_coded += other.dist_coded;
        self.dist_exact += other.dist_exact;
        self.rows_scored += other.rows_scored;
        self.codeword_bytes += other.codeword_bytes;
        self.visited_inserts += other.visited_inserts;
        self.rerank_pool += other.rerank_pool;
        self.scratch_checkouts += other.scratch_checkouts;
    }

    /// Whether no work was recorded (a cache hit, or an untouched index).
    pub fn is_zero(&self) -> bool {
        *self == Self::new()
    }

    /// Total distance evaluations, coded and exact combined.
    pub fn dist_evals(&self) -> u64 {
        self.dist_coded + self.dist_exact
    }

    /// The fields in [`PROFILE_FIELDS`] order (wire + JSON encoding).
    pub fn as_array(&self) -> [u64; 9] {
        [
            self.hops_upper,
            self.hops_base,
            self.dist_coded,
            self.dist_exact,
            self.rows_scored,
            self.codeword_bytes,
            self.visited_inserts,
            self.rerank_pool,
            self.scratch_checkouts,
        ]
    }

    /// Rebuilds a profile from [`Self::as_array`] order.
    pub fn from_array(values: [u64; 9]) -> Self {
        Self {
            hops_upper: values[0],
            hops_base: values[1],
            dist_coded: values[2],
            dist_exact: values[3],
            rows_scored: values[4],
            codeword_bytes: values[5],
            visited_inserts: values[6],
            rerank_pool: values[7],
            scratch_checkouts: values[8],
        }
    }

    /// This profile as a JSON object with fields in canonical order
    /// (every value is structural — `strip_timings` keeps all of them).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            PROFILE_FIELDS
                .iter()
                .zip(self.as_array())
                .map(|(name, v)| ((*name).to_string(), Json::uint(v)))
                .collect(),
        )
    }

    /// Parses [`Self::to_json`] output (extra keys rejected, all nine
    /// fields required).
    pub fn from_json(json: &Json) -> Option<Self> {
        let Json::Obj(fields) = json else {
            return None;
        };
        if fields.len() != PROFILE_FIELDS.len() {
            return None;
        }
        let mut values = [0u64; 9];
        for (slot, name) in values.iter_mut().zip(PROFILE_FIELDS) {
            let (_, v) = fields.iter().find(|(k, _)| k == name)?;
            *slot = match v {
                Json::Int(i) if *i >= 0 => *i as u64,
                _ => return None,
            };
        }
        Some(Self::from_array(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryProfile {
        QueryProfile {
            hops_upper: 3,
            hops_base: 17,
            dist_coded: 240,
            dist_exact: 40,
            rows_scored: 20,
            codeword_bytes: 4096,
            visited_inserts: 210,
            rerank_pool: 40,
            scratch_checkouts: 1,
        }
    }

    #[test]
    fn add_sums_every_field() {
        let mut a = sample();
        a.add(&sample());
        assert_eq!(a.as_array(), sample().as_array().map(|v| v * 2));
        assert_eq!(a.dist_evals(), 560);
        assert!(!a.is_zero());
        assert!(QueryProfile::new().is_zero());
    }

    #[test]
    fn json_roundtrips_in_canonical_order() {
        let p = sample();
        let json = p.to_json();
        let Json::Obj(fields) = &json else {
            panic!("profile must serialize as an object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, PROFILE_FIELDS);
        assert_eq!(QueryProfile::from_json(&json), Some(p));
        // Reparse from text too.
        let reparsed = Json::parse(&json.to_pretty_string()).unwrap();
        assert_eq!(QueryProfile::from_json(&reparsed), Some(p));
    }

    #[test]
    fn from_json_rejects_missing_or_negative_fields() {
        let mut truncated = match sample().to_json() {
            Json::Obj(f) => f,
            _ => unreachable!(),
        };
        truncated.pop();
        assert_eq!(QueryProfile::from_json(&Json::Obj(truncated)), None);
        let mut negative = match sample().to_json() {
            Json::Obj(f) => f,
            _ => unreachable!(),
        };
        negative[0].1 = Json::Int(-1);
        assert_eq!(QueryProfile::from_json(&Json::Obj(negative)), None);
        assert_eq!(QueryProfile::from_json(&Json::Null), None);
    }
}
