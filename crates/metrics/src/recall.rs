//! Recall against exact ground truth.

use vecstore::Neighbor;

/// Aggregated recall over a query batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecallReport {
    /// Ground-truth neighbors found.
    pub hits: usize,
    /// Total ground-truth neighbors (`queries * k`).
    pub total: usize,
}

impl RecallReport {
    /// `|G ∩ S| / k` averaged over queries.
    pub fn recall(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Computes recall@k: `found[q]` are the ids returned for query `q`,
/// `truth[q]` the exact neighbors (only the first `k` of each are used).
///
/// # Panics
/// Panics if the two slices have different lengths or `k == 0`.
pub fn recall_at_k(found: &[Vec<u32>], truth: &[Vec<Neighbor>], k: usize) -> RecallReport {
    assert_eq!(found.len(), truth.len(), "query count mismatch");
    assert!(k > 0, "k must be positive");
    let mut hits = 0;
    let mut total = 0;
    for (f, t) in found.iter().zip(truth.iter()) {
        let f_top = &f[..f.len().min(k)];
        for gt in t.iter().take(k) {
            total += 1;
            if f_top.contains(&gt.id) {
                hits += 1;
            }
        }
    }
    RecallReport { hits, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(ids: &[&[u32]]) -> Vec<Vec<Neighbor>> {
        ids.iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, &id)| Neighbor {
                        id,
                        dist_sq: i as f32,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn perfect_recall() {
        let found = vec![vec![1, 2, 3]];
        let t = truth(&[&[1, 2, 3]]);
        assert_eq!(recall_at_k(&found, &t, 3).recall(), 1.0);
    }

    #[test]
    fn order_does_not_matter() {
        let found = vec![vec![3, 1, 2]];
        let t = truth(&[&[1, 2, 3]]);
        assert_eq!(recall_at_k(&found, &t, 3).recall(), 1.0);
    }

    #[test]
    fn partial_recall() {
        let found = vec![vec![1, 9, 8]];
        let t = truth(&[&[1, 2, 3]]);
        let r = recall_at_k(&found, &t, 3);
        assert_eq!(r.hits, 1);
        assert_eq!(r.total, 3);
    }

    #[test]
    fn k_truncates_both_sides() {
        // Beyond-k results must not count.
        let found = vec![vec![9, 1]];
        let t = truth(&[&[1, 2]]);
        let r = recall_at_k(&found, &t, 1);
        assert_eq!(r.hits, 0, "1 is in found but outside top-1");
        assert_eq!(r.total, 1);
    }

    #[test]
    fn averages_over_queries() {
        let found = vec![vec![1], vec![5]];
        let t = truth(&[&[1], &[2]]);
        let r = recall_at_k(&found, &t, 1);
        assert_eq!(r.recall(), 0.5);
    }
}
