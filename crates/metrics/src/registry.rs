//! A process-wide registry of named metrics, snapshot-able as JSON.
//!
//! Naming convention: dotted lower-snake paths,
//! `layer.component.metric` — e.g. `serving.cache.hits`,
//! `serving.replica.group0.retries`, `transport.node3.frames_sent`.
//! Snapshots iterate names in lexicographic order (a `BTreeMap`), so a
//! snapshot of the same registry state is byte-stable.
//!
//! Two registration styles:
//!
//! * owned primitives — [`Counter`], [`Gauge`], [`Log2Histogram`] handed
//!   out by [`MetricsRegistry::counter`] & co., updated lock-free by the
//!   holder;
//! * snapshot sources — [`MetricsRegistry::register_source`] adopts an
//!   existing stats object (a `ReplicaCounters`, `TransportCounters`,
//!   or cache stats snapshot) through a closure evaluated at snapshot
//!   time, so pre-existing counters join the registry without changing
//!   their own types.

use crate::report::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A lock-free monotonic counter handle (clone = same counter).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh unregistered counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free signed gauge handle (clone = same gauge).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucket histogram: bucket `0` counts zeros, bucket `i ≥ 1`
/// counts values in `[2^(i-1), 2^i)`. 65 buckets cover the full `u64`
/// range with no configuration and no allocation on the observe path.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; 65],
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Log2Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `v` falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observed values (saturating semantics are the caller's
    /// problem; wrap needs 2⁶⁴ observed nanoseconds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// All 65 bucket counts, index = [`Self::bucket_of`] (the
    /// OpenMetrics renderer turns these into cumulative `le` buckets).
    pub fn bucket_loads(&self) -> [u64; 65] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// JSON form: `{"count", "sum", "buckets": {"<lower_bound>": n}}`
    /// with empty buckets omitted.
    pub fn to_json(&self) -> Json {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let lower = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
            buckets.push((lower.to_string(), Json::Int(n as i64)));
        }
        Json::Obj(vec![
            ("count".into(), Json::Int(self.count() as i64)),
            ("sum".into(), Json::Int(self.sum() as i64)),
            ("buckets".into(), Json::Obj(buckets)),
        ])
    }
}

/// One registered metric. Cheap to clone (handles are `Arc`s), which is
/// what lets snapshots copy the table under the mutex and evaluate /
/// serialize entirely outside it.
#[derive(Clone)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Log2Histogram>),
    Source(Arc<dyn Fn() -> Json + Send + Sync>),
}

impl Metric {
    fn to_json(&self) -> Json {
        match self {
            Metric::Counter(c) => Json::Int(c.get() as i64),
            Metric::Gauge(g) => Json::Int(g.get()),
            Metric::Histogram(h) => h.to_json(),
            Metric::Source(f) => f(),
        }
    }
}

/// The registry: named metrics behind one mutex (touched only at
/// registration and snapshot time — the handed-out handles update
/// lock-free).
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// A fresh empty registry (most callers want [`Self::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is already registered as a non-counter"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is already registered as a non-gauge"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Arc<Log2Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Log2Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is already registered as a non-histogram"),
        }
    }

    /// Registers (or replaces) a snapshot source: `source` is evaluated
    /// at every [`Self::snapshot`] and its JSON appears under `name`.
    /// This is how pre-existing stats objects (replica, transport, cache
    /// counters) join the registry without changing their types.
    pub fn register_source(&self, name: &str, source: impl Fn() -> Json + Send + Sync + 'static) {
        self.metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Source(Arc::new(source)));
    }

    /// Removes `name` (a no-op when absent) — what a torn-down serving
    /// stack calls so a long-lived registry doesn't scrape the dead.
    pub fn unregister(&self, name: &str) {
        self.metrics.lock().unwrap().remove(name);
    }

    /// Drops every metric (tests; the global registry outlives scenarios).
    pub fn clear(&self) {
        self.metrics.lock().unwrap().clear();
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.lock().unwrap().keys().cloned().collect()
    }

    /// Clones the metric table (names in lexicographic order). Held
    /// only long enough to copy `Arc` handles — sources are **not**
    /// evaluated under the mutex, so a slow scrape render can never
    /// stall a thread registering counters on the hot path.
    pub(crate) fn typed_snapshot(&self) -> Vec<(String, Metric)> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(name, metric)| (name.clone(), metric.clone()))
            .collect()
    }

    /// One JSON object of every metric, keys in lexicographic order.
    /// Source closures run *after* the registry mutex is released.
    pub fn snapshot(&self) -> Json {
        Json::Obj(
            self.typed_snapshot()
                .into_iter()
                .map(|(name, metric)| (name, metric.to_json()))
                .collect(),
        )
    }

    /// The registry in OpenMetrics text exposition format (see
    /// [`crate::openmetrics`]); families in lexicographic order,
    /// terminated by `# EOF`.
    pub fn render_openmetrics(&self) -> String {
        crate::openmetrics::render_families(self.typed_snapshot())
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.hits");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a.hits").get(), 5); // same handle by name
        let g = reg.gauge("a.depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let h = reg.histogram("a.latency");
        h.observe(0);
        h.observe(1);
        h.observe(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.register_source("m.middle", || Json::Str("src".into()));
        let a = reg.snapshot().to_pretty_string();
        let b = reg.snapshot().to_pretty_string();
        assert_eq!(a, b, "same state, same bytes");
        let a_pos = a.find("a.first").unwrap();
        let m_pos = a.find("m.middle").unwrap();
        let z_pos = a.find("z.last").unwrap();
        assert!(a_pos < m_pos && m_pos < z_pos);
    }

    #[test]
    fn sources_are_evaluated_at_snapshot_time() {
        let reg = MetricsRegistry::new();
        let live = Arc::new(AtomicU64::new(1));
        let probe = Arc::clone(&live);
        reg.register_source("x.live", move || {
            Json::Int(probe.load(Ordering::Relaxed) as i64)
        });
        assert!(reg.snapshot().to_pretty_string().contains("1"));
        live.store(9, Ordering::Relaxed);
        assert!(reg.snapshot().to_pretty_string().contains("9"));
        reg.unregister("x.live");
        assert!(!reg.snapshot().to_pretty_string().contains("x.live"));
    }

    #[test]
    fn sources_run_outside_the_registry_mutex() {
        // A source that touches the registry while a snapshot renders.
        // Before snapshots copied handles out, this self-deadlocked on
        // the std (non-reentrant) mutex; now the lock is released before
        // any source closure runs.
        static REG: OnceLock<MetricsRegistry> = OnceLock::new();
        let reg = REG.get_or_init(MetricsRegistry::new);
        reg.register_source("reentrant.src", || {
            Json::Int(REG.get().unwrap().counter("reentrant.peer").get() as i64)
        });
        reg.counter("reentrant.peer").add(3);
        let snap = reg.snapshot().to_pretty_string();
        assert!(snap.contains("\"reentrant.src\": 3"));
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn type_collisions_panic() {
        let reg = MetricsRegistry::new();
        reg.gauge("dual");
        reg.counter("dual");
    }
}
