//! Average Distance Ratio (paper Section 4.1.4, after Patella & Ciaccia).
//!
//! `ADR = mean over queries of (1/k) Σᵢ δ(q, retrievedᵢ) / δ(q, gtᵢ)` with
//! both result lists sorted ascending. A perfect search scores 1.0; larger
//! values mean the retrieved vectors are farther than the true neighbors.
//! The paper uses ADR (Figure 9) because two methods at equal recall can
//! return very different false positives.

use vecstore::Neighbor;

/// Computes ADR from *squared* L2 distances (the convention everywhere in
/// this workspace); ratios are taken on real distances via square roots.
///
/// Queries where any ground-truth distance is zero (query collides with a
/// database vector) contribute a per-pair ratio of 1 when the retrieved
/// distance is also zero and are otherwise scored against a tiny epsilon,
/// keeping the metric finite.
///
/// # Panics
/// Panics if slice lengths differ or `k == 0`.
pub fn average_distance_ratio(
    found_dists_sq: &[Vec<f32>],
    truth: &[Vec<Neighbor>],
    k: usize,
) -> f64 {
    assert_eq!(found_dists_sq.len(), truth.len(), "query count mismatch");
    assert!(k > 0, "k must be positive");
    if found_dists_sq.is_empty() {
        return 0.0;
    }
    const EPS: f64 = 1e-12;
    let mut per_query_sum = 0.0f64;
    for (f, t) in found_dists_sq.iter().zip(truth.iter()) {
        let kk = k.min(f.len()).min(t.len());
        if kk == 0 {
            continue;
        }
        let mut ratio_sum = 0.0f64;
        for i in 0..kk {
            let fd = f64::from(f[i]).max(0.0).sqrt();
            let td = f64::from(t[i].dist_sq).max(0.0).sqrt();
            ratio_sum += if td <= EPS {
                if fd <= EPS {
                    1.0
                } else {
                    fd / EPS.sqrt()
                }
            } else {
                fd / td
            };
        }
        per_query_sum += ratio_sum / kk as f64;
    }
    per_query_sum / found_dists_sq.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dists: &[f32]) -> Vec<Neighbor> {
        dists
            .iter()
            .enumerate()
            .map(|(i, &d)| Neighbor {
                id: i as u32,
                dist_sq: d,
            })
            .collect()
    }

    #[test]
    fn exact_retrieval_scores_one() {
        let found = vec![vec![1.0, 4.0, 9.0]];
        let truth = vec![t(&[1.0, 4.0, 9.0])];
        assert!((average_distance_ratio(&found, &truth, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worse_retrieval_scores_above_one() {
        let found = vec![vec![4.0, 16.0]];
        let truth = vec![t(&[1.0, 4.0])];
        let adr = average_distance_ratio(&found, &truth, 2);
        assert!((adr - 2.0).abs() < 1e-9, "sqrt ratios are 2 and 2 → {adr}");
    }

    #[test]
    fn averages_across_queries() {
        let found = vec![vec![1.0], vec![9.0]];
        let truth = vec![t(&[1.0]), t(&[1.0])];
        let adr = average_distance_ratio(&found, &truth, 1);
        assert!((adr - 2.0).abs() < 1e-9, "(1 + 3)/2 = 2 → {adr}");
    }

    #[test]
    fn zero_truth_distance_handled() {
        let found = vec![vec![0.0]];
        let truth = vec![t(&[0.0])];
        assert_eq!(average_distance_ratio(&found, &truth, 1), 1.0);
    }

    #[test]
    fn k_clamps_to_available_results() {
        let found = vec![vec![1.0]];
        let truth = vec![t(&[1.0, 4.0])];
        assert!((average_distance_ratio(&found, &truth, 5) - 1.0).abs() < 1e-9);
    }
}
