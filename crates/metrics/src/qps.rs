//! Queries-per-second and latency measurement.

use std::time::Instant;

/// Throughput/latency summary of one search sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QpsReport {
    /// Queries executed.
    pub queries: usize,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

impl QpsReport {
    /// Queries per second.
    pub fn qps(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.queries as f64 / self.seconds
        }
    }

    /// Mean latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.seconds * 1000.0 / self.queries as f64
        }
    }
}

/// Runs `search` once per query index and reports wall-clock throughput.
/// The closure owns all per-query state (the harness captures its index and
/// query set by reference).
pub fn measure_qps(n_queries: usize, mut search: impl FnMut(usize)) -> QpsReport {
    let t0 = Instant::now();
    for qi in 0..n_queries {
        search(qi);
    }
    QpsReport {
        queries: n_queries,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_queries_and_time() {
        let mut ran = 0;
        let r = measure_qps(10, |_| ran += 1);
        assert_eq!(ran, 10);
        assert_eq!(r.queries, 10);
        assert!(r.seconds >= 0.0);
    }

    #[test]
    fn qps_and_latency_consistent() {
        let r = QpsReport {
            queries: 100,
            seconds: 2.0,
        };
        assert_eq!(r.qps(), 50.0);
        assert_eq!(r.mean_latency_ms(), 20.0);
    }

    #[test]
    fn zero_queries_safe() {
        let r = measure_qps(0, |_| {});
        assert_eq!(r.qps(), 0.0);
        assert_eq!(r.mean_latency_ms(), 0.0);
    }
}
