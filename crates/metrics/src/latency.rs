//! Latency-distribution summaries (percentiles) for serving reports.

/// Percentile summary of a latency sample set, in milliseconds.
///
/// Built by [`latency_summary`] from per-query wall-clock samples; the
/// serving layer prints it as the `p50`/`p99` half of its one-line
/// summary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (50th percentile).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Worst observed sample.
    pub max_ms: f64,
}

/// Nearest-rank percentile over an ascending-sorted sample set:
/// the smallest sample ≥ `p` percent of the distribution.
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summarizes latency samples (milliseconds) into mean/p50/p95/p99/max
/// using the nearest-rank percentile definition. An empty slice yields the
/// all-zero summary.
pub fn latency_summary(samples_ms: &[f64]) -> LatencySummary {
    if samples_ms.is_empty() {
        return LatencySummary::default();
    }
    let mut sorted = samples_ms.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    LatencySummary {
        samples: sorted.len(),
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_ms: nearest_rank(&sorted, 50.0),
        p95_ms: nearest_rank(&sorted, 95.0),
        p99_ms: nearest_rank(&sorted, 99.0),
        p999_ms: nearest_rank(&sorted, 99.9),
        max_ms: *sorted.last().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        assert_eq!(latency_summary(&[]), LatencySummary::default());
    }

    #[test]
    fn single_sample_fills_every_field() {
        let s = latency_summary(&[2.5]);
        assert_eq!(s.samples, 1);
        assert_eq!(s.mean_ms, 2.5);
        assert_eq!(s.p50_ms, 2.5);
        assert_eq!(s.p99_ms, 2.5);
        assert_eq!(s.max_ms, 2.5);
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        // 1..=100 ms: nearest-rank p50 = 50, p95 = 95, p99 = 99.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = latency_summary(&samples);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        // ceil(0.999 * 100) = 100 → the top sample.
        assert_eq!(s.p999_ms, 100.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn order_independent() {
        let a = latency_summary(&[3.0, 1.0, 2.0]);
        let b = latency_summary(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50_ms, 2.0);
    }
}
