//! Deterministic per-request tracing for the serving stack.
//!
//! A [`TraceContext`] rides inside a search request as it descends the
//! serving layers (cache → replica group → shards → wire → node); each
//! layer records one or more typed [`SpanKind`]s into the context's
//! shared [`SpanRing`]. Trace ids are derived from `(seed, sequence)`
//! with [`trace_id_for`] — never from wall-clock — so two runs with the
//! same workload produce the same ids and the same span *structure*;
//! only [`SpanRecord::elapsed_ns`] varies between runs, and the JSON
//! forms emit it under a key that `report::strip_timings` removes.
//!
//! Ordering model: spans are recorded concurrently (shard fan-out runs
//! on worker threads), so the ring's global claim order is not
//! reproducible. What *is* reproducible is the per-lane order — a lane
//! is one sequential execution strand (`None` = the coordinator strand,
//! `Some(shard)` = that shard's fan-out strand), and every span of a
//! lane is recorded by one thread in program order. [`SpanRing::for_trace`]
//! therefore sorts by `(lane, claim order)`, which yields one canonical,
//! reproducible span sequence per trace.

use crate::report::Json;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wire encoding of "no lane" (the coordinator strand).
pub const LANE_NONE: u32 = u32::MAX;

/// How an attempt ended, as recorded in a span (mirrors the serving
/// layer's fault kinds without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The attempt succeeded.
    Ok,
    /// Failed transiently; a retry may succeed.
    Transient,
    /// Failed hard; the target is down until something changes.
    Dead,
    /// The target answered, but not with usable results.
    Malformed,
}

impl SpanOutcome {
    /// Stable numeric code (wire + ring encoding).
    pub fn code(self) -> u64 {
        match self {
            SpanOutcome::Ok => 0,
            SpanOutcome::Transient => 1,
            SpanOutcome::Dead => 2,
            SpanOutcome::Malformed => 3,
        }
    }

    /// Decodes [`Self::code`].
    pub fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            0 => SpanOutcome::Ok,
            1 => SpanOutcome::Transient,
            2 => SpanOutcome::Dead,
            3 => SpanOutcome::Malformed,
            _ => return None,
        })
    }

    /// Lower-case diagnostic name (the JSON form).
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Transient => "transient",
            SpanOutcome::Dead => "dead",
            SpanOutcome::Malformed => "malformed",
        }
    }
}

/// One typed span: which stage of the serving stack ran, with the
/// stage's structural facts (counts, not durations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The query cache was consulted.
    CacheLookup {
        /// Whether the lookup hit.
        hit: bool,
    },
    /// The replica router planned a candidate order.
    Route {
        /// Candidates in the plan.
        candidates: u64,
    },
    /// One attempt was placed on a replica.
    ReplicaAttempt {
        /// The replica's id within its group.
        replica: u64,
        /// How the attempt ended.
        outcome: SpanOutcome,
    },
    /// A request was fanned out across shards.
    ShardFanout {
        /// Shards addressed.
        shards: u64,
    },
    /// Per-shard results were merged.
    Gather {
        /// Hits surviving the merge.
        merged: u64,
    },
    /// An exact rerank pass over a candidate pool.
    Rerank {
        /// Candidate-pool size.
        pool: u64,
    },
    /// One framed request/response round trip.
    WireExchange {
        /// Frame bytes written.
        bytes_out: u64,
        /// Frame bytes read.
        bytes_in: u64,
    },
    /// Time spent queued behind admission control before execution (the
    /// duration lives in `elapsed_ns`, like every span).
    QueueWait {
        /// Queue depth observed when this request was enqueued.
        depth: u64,
    },
}

impl SpanKind {
    /// Lower-snake-case span taxonomy name (the JSON `kind` value).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::CacheLookup { .. } => "cache_lookup",
            SpanKind::Route { .. } => "route",
            SpanKind::ReplicaAttempt { .. } => "replica_attempt",
            SpanKind::ShardFanout { .. } => "shard_fanout",
            SpanKind::Gather { .. } => "gather",
            SpanKind::Rerank { .. } => "rerank",
            SpanKind::WireExchange { .. } => "wire_exchange",
            SpanKind::QueueWait { .. } => "queue_wait",
        }
    }

    /// Stable numeric code (wire + ring encoding); `0` is reserved for
    /// "empty slot".
    pub fn code(&self) -> u8 {
        match self {
            SpanKind::CacheLookup { .. } => 1,
            SpanKind::Route { .. } => 2,
            SpanKind::ReplicaAttempt { .. } => 3,
            SpanKind::ShardFanout { .. } => 4,
            SpanKind::Gather { .. } => 5,
            SpanKind::Rerank { .. } => 6,
            SpanKind::WireExchange { .. } => 7,
            SpanKind::QueueWait { .. } => 8,
        }
    }

    /// The kind's two payload words (ring + wire encoding).
    pub fn payload(&self) -> (u64, u64) {
        match *self {
            SpanKind::CacheLookup { hit } => (u64::from(hit), 0),
            SpanKind::Route { candidates } => (candidates, 0),
            SpanKind::ReplicaAttempt { replica, outcome } => (replica, outcome.code()),
            SpanKind::ShardFanout { shards } => (shards, 0),
            SpanKind::Gather { merged } => (merged, 0),
            SpanKind::Rerank { pool } => (pool, 0),
            SpanKind::WireExchange {
                bytes_out,
                bytes_in,
            } => (bytes_out, bytes_in),
            SpanKind::QueueWait { depth } => (depth, 0),
        }
    }

    /// Decodes a `(code, payload)` triple back into a kind.
    pub fn from_raw(code: u8, a: u64, b: u64) -> Option<SpanKind> {
        Some(match code {
            1 => SpanKind::CacheLookup { hit: a != 0 },
            2 => SpanKind::Route { candidates: a },
            3 => SpanKind::ReplicaAttempt {
                replica: a,
                outcome: SpanOutcome::from_code(b)?,
            },
            4 => SpanKind::ShardFanout { shards: a },
            5 => SpanKind::Gather { merged: a },
            6 => SpanKind::Rerank { pool: a },
            7 => SpanKind::WireExchange {
                bytes_out: a,
                bytes_in: b,
            },
            8 => SpanKind::QueueWait { depth: a },
            _ => return None,
        })
    }
}

/// One recorded span, as read back out of a [`SpanRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace_id: u64,
    /// Ring claim order — a tiebreaker *within* a lane, not a
    /// reproducible value across runs (see the module docs).
    pub seq: u64,
    /// Execution strand: `None` = coordinator, `Some(i)` = shard `i`.
    pub lane: Option<u32>,
    /// What ran.
    pub kind: SpanKind,
    /// Wall-clock duration. Timing-only: excluded from structural
    /// comparison and stripped from reports.
    pub elapsed_ns: u64,
}

impl SpanRecord {
    /// The lane's wire form ([`LANE_NONE`] for the coordinator strand).
    pub fn lane_raw(&self) -> u32 {
        self.lane.unwrap_or(LANE_NONE)
    }

    /// Decodes a wire-form lane.
    pub fn lane_of_raw(raw: u32) -> Option<u32> {
        (raw != LANE_NONE).then_some(raw)
    }

    /// This span as a JSON object (`elapsed_ns` is a timing key that
    /// `report::strip_timings` removes).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> =
            vec![("kind".into(), Json::Str(self.kind.name().into()))];
        fields.push((
            "lane".into(),
            match self.lane {
                Some(l) => Json::Int(i64::from(l)),
                None => Json::Null,
            },
        ));
        match self.kind {
            SpanKind::CacheLookup { hit } => fields.push(("hit".into(), Json::Bool(hit))),
            SpanKind::Route { candidates } => {
                fields.push(("candidates".into(), Json::Int(candidates as i64)))
            }
            SpanKind::ReplicaAttempt { replica, outcome } => {
                fields.push(("replica".into(), Json::Int(replica as i64)));
                fields.push(("outcome".into(), Json::Str(outcome.name().into())));
            }
            SpanKind::ShardFanout { shards } => {
                fields.push(("shards".into(), Json::Int(shards as i64)))
            }
            SpanKind::Gather { merged } => fields.push(("merged".into(), Json::Int(merged as i64))),
            SpanKind::Rerank { pool } => fields.push(("pool".into(), Json::Int(pool as i64))),
            SpanKind::WireExchange {
                bytes_out,
                bytes_in,
            } => {
                fields.push(("bytes_out".into(), Json::Int(bytes_out as i64)));
                fields.push(("bytes_in".into(), Json::Int(bytes_in as i64)));
            }
            SpanKind::QueueWait { depth } => fields.push(("depth".into(), Json::Int(depth as i64))),
        }
        fields.push(("elapsed_ns".into(), Json::Int(self.elapsed_ns as i64)));
        Json::Obj(fields)
    }
}

/// One trace (its canonically ordered spans) as a JSON object — the
/// `--trace-out` line format.
pub fn trace_to_json(trace_id: u64, spans: &[SpanRecord]) -> Json {
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(format!("{trace_id:016x}"))),
        (
            "spans".into(),
            Json::Arr(spans.iter().map(SpanRecord::to_json).collect()),
        ),
    ])
}

/// Collects each trace id's spans from one ring snapshot into the
/// `--trace-out` line format, one JSON object per id in the given order.
/// Spans are canonically ordered per trace (coordinator lane first, then
/// per-shard lanes, each in program order), so the structure is
/// reproducible even though concurrent lanes interleave in the ring. A
/// single snapshot serves every id — O(ring + ids), not O(ring × ids).
pub fn collect_traces(ring: &SpanRing, trace_ids: &[u64]) -> Vec<Json> {
    let mut by_trace: std::collections::HashMap<u64, Vec<SpanRecord>> =
        std::collections::HashMap::with_capacity(trace_ids.len());
    for s in ring.snapshot() {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    trace_ids
        .iter()
        .map(|&id| {
            let mut spans = by_trace.remove(&id).unwrap_or_default();
            spans.sort_by_key(|r| (r.lane.is_some(), r.lane.unwrap_or(0), r.seq));
            trace_to_json(id, &spans)
        })
        .collect()
}

/// Derives a deterministic, non-zero trace id from a workload seed and a
/// request sequence number (splitmix64 over both words; `0` is reserved
/// for "untraced" on the wire).
pub fn trace_id_for(seed: u64, sequence: u64) -> u64 {
    let id = splitmix64(seed ^ splitmix64(sequence.wrapping_add(0x51ED_2701)));
    if id == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        id
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One ring slot: a seqlock version word plus the span's fields, each an
/// atomic so torn reads are detected, never undefined.
#[derive(Default)]
struct Slot {
    /// `0` = never written; odd = write in progress; even non-zero =
    /// stable (the value commits to one particular claim, so a reader
    /// that sees the same even version before and after its field reads
    /// got a coherent record).
    version: AtomicU64,
    trace_id: AtomicU64,
    seq: AtomicU64,
    /// `kind code | lane << 32` packed into one word.
    kind_lane: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    elapsed_ns: AtomicU64,
}

/// A lock-free bounded span buffer: writers claim slots with one
/// `fetch_add` and publish via a per-slot seqlock; readers snapshot
/// without blocking writers, discarding slots caught mid-write. When the
/// ring wraps, the oldest spans are overwritten ([`Self::dropped`] counts
/// them) — size the ring to the workload to keep traces complete.
pub struct SpanRing {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl SpanRing {
    /// A ring of at least `capacity` slots (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let slots = (0..capacity).map(|_| Slot::default()).collect::<Vec<_>>();
        Self {
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans recorded over the ring's lifetime (recorded, not retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Spans lost to wrap-around.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one span (lock-free; never blocks the serving path).
    pub fn record(&self, trace_id: u64, lane: Option<u32>, kind: SpanKind, elapsed_ns: u64) {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
        let (a, b) = kind.payload();
        let lane_raw = lane.unwrap_or(LANE_NONE);
        // Seqlock write: odd version in, fields, even version out. The
        // version commits to this claim (`seq`), so a racing wrap-around
        // writer leaves a *different* even version behind and a reader
        // pairing our "before" with their "after" still rejects the slot.
        slot.version
            .store(seq.wrapping_mul(2) | 1, Ordering::Release);
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Relaxed);
        slot.kind_lane.store(
            u64::from(kind.code()) | (u64::from(lane_raw) << 32),
            Ordering::Relaxed,
        );
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.elapsed_ns.store(elapsed_ns, Ordering::Relaxed);
        slot.version
            .store(seq.wrapping_mul(2).wrapping_add(2), Ordering::Release);
    }

    /// A coherent snapshot of every retained span, in claim order. Slots
    /// caught mid-write are skipped, not blocked on.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let before = slot.version.load(Ordering::Acquire);
            if before == 0 || before & 1 == 1 {
                continue; // never written, or mid-write
            }
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let seq = slot.seq.load(Ordering::Relaxed);
            let kind_lane = slot.kind_lane.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let elapsed_ns = slot.elapsed_ns.load(Ordering::Relaxed);
            if slot.version.load(Ordering::Acquire) != before {
                continue; // overwritten while reading
            }
            let kind = match SpanKind::from_raw((kind_lane & 0xFF) as u8, a, b) {
                Some(kind) => kind,
                None => continue, // torn beyond detection; drop, don't guess
            };
            out.push(SpanRecord {
                trace_id,
                seq,
                lane: SpanRecord::lane_of_raw((kind_lane >> 32) as u32),
                kind,
                elapsed_ns,
            });
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The canonical span sequence of one trace: coordinator-lane spans
    /// first, then each shard lane in order, each lane in program order.
    /// This ordering is reproducible across runs (see the module docs).
    pub fn for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .snapshot()
            .into_iter()
            .filter(|r| r.trace_id == trace_id)
            .collect();
        spans.sort_by_key(|r| (r.lane.is_some(), r.lane.unwrap_or(0), r.seq));
        spans
    }
}

impl fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// The tracing handle a request carries: a trace id, the execution lane,
/// and the shared ring spans land in. Cloning is cheap (one `Arc` bump);
/// [`Self::with_lane`] derives the per-shard contexts for fan-out.
#[derive(Clone)]
pub struct TraceContext {
    trace_id: u64,
    lane: Option<u32>,
    ring: Arc<SpanRing>,
}

impl TraceContext {
    /// A coordinator-lane context for `trace_id`, recording into `ring`.
    pub fn new(ring: Arc<SpanRing>, trace_id: u64) -> Self {
        Self {
            trace_id,
            lane: None,
            ring,
        }
    }

    /// The trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The execution lane (`None` = coordinator).
    pub fn lane(&self) -> Option<u32> {
        self.lane
    }

    /// The shared ring.
    pub fn ring(&self) -> &Arc<SpanRing> {
        &self.ring
    }

    /// This trace viewed from shard lane `lane` (what a fan-out layer
    /// attaches to each per-shard sub-request).
    pub fn with_lane(&self, lane: u32) -> Self {
        Self {
            trace_id: self.trace_id,
            lane: Some(lane),
            ring: Arc::clone(&self.ring),
        }
    }

    /// Records `kind` with no duration (structural-only span).
    pub fn record(&self, kind: SpanKind) {
        self.record_timed(kind, 0);
    }

    /// Records `kind` with a measured duration.
    pub fn record_timed(&self, kind: SpanKind, elapsed_ns: u64) {
        self.ring.record(self.trace_id, self.lane, kind, elapsed_ns);
    }
}

impl fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceContext")
            .field("trace_id", &format_args!("{:016x}", self.trace_id))
            .field("lane", &self.lane)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_nonzero() {
        assert_eq!(trace_id_for(42, 7), trace_id_for(42, 7));
        assert_ne!(trace_id_for(42, 7), trace_id_for(42, 8));
        assert_ne!(trace_id_for(42, 7), trace_id_for(43, 7));
        for seq in 0..1000 {
            assert_ne!(trace_id_for(0, seq), 0);
        }
    }

    #[test]
    fn kinds_roundtrip_through_raw() {
        let kinds = [
            SpanKind::CacheLookup { hit: true },
            SpanKind::Route { candidates: 3 },
            SpanKind::ReplicaAttempt {
                replica: 2,
                outcome: SpanOutcome::Transient,
            },
            SpanKind::ShardFanout { shards: 4 },
            SpanKind::Gather { merged: 40 },
            SpanKind::Rerank { pool: 80 },
            SpanKind::WireExchange {
                bytes_out: 128,
                bytes_in: 512,
            },
            SpanKind::QueueWait { depth: 17 },
        ];
        for kind in kinds {
            let (a, b) = kind.payload();
            assert_eq!(SpanKind::from_raw(kind.code(), a, b), Some(kind));
        }
        assert_eq!(SpanKind::from_raw(0, 0, 0), None);
        assert_eq!(SpanKind::from_raw(99, 0, 0), None);
    }

    #[test]
    fn ring_records_and_reads_back_in_claim_order() {
        let ring = SpanRing::new(16);
        let id = trace_id_for(1, 0);
        ring.record(id, None, SpanKind::CacheLookup { hit: false }, 10);
        ring.record(id, Some(0), SpanKind::ShardFanout { shards: 2 }, 0);
        ring.record(id, None, SpanKind::Gather { merged: 5 }, 20);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].kind, SpanKind::CacheLookup { hit: false });
        assert_eq!(spans[0].elapsed_ns, 10);
        assert_eq!(spans[1].lane, Some(0));
        assert_eq!(spans[2].kind, SpanKind::Gather { merged: 5 });
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn for_trace_orders_coordinator_lane_first() {
        let ring = Arc::new(SpanRing::new(32));
        let ctx = TraceContext::new(Arc::clone(&ring), trace_id_for(9, 9));
        let other = TraceContext::new(Arc::clone(&ring), trace_id_for(9, 10));
        ctx.with_lane(1).record(SpanKind::Gather { merged: 1 });
        other.record(SpanKind::Route { candidates: 1 });
        ctx.with_lane(0).record(SpanKind::Gather { merged: 2 });
        ctx.record(SpanKind::ShardFanout { shards: 2 });
        let spans = ring.for_trace(ctx.trace_id());
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].lane, None);
        assert_eq!(spans[1].lane, Some(0));
        assert_eq!(spans[2].lane, Some(1));
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        let ring = SpanRing::new(8);
        for i in 0..20 {
            ring.record(1, None, SpanKind::Route { candidates: i }, 0);
        }
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.dropped(), 12);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 8);
        assert!(spans.iter().all(|s| s.seq >= 12));
    }

    #[test]
    fn concurrent_writers_never_produce_torn_records() {
        let ring = Arc::new(SpanRing::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        ring.record(
                            u64::from(t) + 1,
                            Some(t),
                            SpanKind::WireExchange {
                                bytes_out: i,
                                bytes_in: i * 2,
                            },
                            0,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every surviving record must be internally consistent.
        for span in ring.snapshot() {
            match span.kind {
                SpanKind::WireExchange {
                    bytes_out,
                    bytes_in,
                } => assert_eq!(bytes_in, bytes_out * 2),
                other => panic!("unexpected kind {other:?}"),
            }
            assert!(span.trace_id >= 1 && span.trace_id <= 4);
        }
    }

    #[test]
    fn json_form_carries_kind_fields_and_elapsed() {
        let rec = SpanRecord {
            trace_id: 7,
            seq: 0,
            lane: Some(2),
            kind: SpanKind::ReplicaAttempt {
                replica: 1,
                outcome: SpanOutcome::Dead,
            },
            elapsed_ns: 42,
        };
        let text = rec.to_json().to_pretty_string();
        assert!(text.contains("\"kind\": \"replica_attempt\""));
        assert!(text.contains("\"replica\": 1"));
        assert!(text.contains("\"outcome\": \"dead\""));
        assert!(text.contains("\"lane\": 2"));
        assert!(text.contains("\"elapsed_ns\": 42"));
        let tree = trace_to_json(rec.trace_id, &[rec]).to_pretty_string();
        assert!(tree.contains("\"trace_id\": \"0000000000000007\""));
        assert!(tree.contains("\"spans\""));
    }

    /// Threaded stress over the seqlock: many writers wrapping the ring
    /// hard while readers snapshot concurrently. Every span recorded must
    /// be either retained stable or counted dropped, no torn record may
    /// escape `snapshot()`, and overwrite-oldest must keep each lane's
    /// surviving sequence monotone in program order.
    #[test]
    fn threaded_writers_never_tear_records_and_account_for_drops() {
        use std::sync::Arc;

        let ring = Arc::new(SpanRing::new(1024));
        let threads: u32 = 8;
        let per_thread: u64 = 4096; // 32k records through 1k slots: heavy wrap
        let writers: Vec<_> = (0..threads)
            .map(|lane| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // Cross-field invariants a torn read cannot fake:
                        // bytes_in = bytes_out ^ trace_id, and the low
                        // half of bytes_out mirrors elapsed_ns.
                        let trace_id = 1 + u64::from(lane);
                        let out = (u64::from(lane) << 32) | i;
                        ring.record(
                            trace_id,
                            Some(lane),
                            SpanKind::WireExchange {
                                bytes_out: out,
                                bytes_in: out ^ trace_id,
                            },
                            i,
                        );
                    }
                })
            })
            .collect();
        let check_record = |r: &SpanRecord| match r.kind {
            SpanKind::WireExchange {
                bytes_out,
                bytes_in,
            } => {
                assert_eq!(
                    bytes_in,
                    bytes_out ^ r.trace_id,
                    "torn record escaped snapshot()"
                );
                assert_eq!(
                    bytes_out & 0xFFFF_FFFF,
                    r.elapsed_ns,
                    "fields from two different writes in one record"
                );
                assert_eq!(
                    r.lane,
                    Some((bytes_out >> 32) as u32),
                    "lane does not match the writer that claimed the slot"
                );
            }
            _ => panic!("foreign span kind materialized in the ring"),
        };
        // Readers race the writers: every snapshot they take must already
        // be coherent, mid-write and overwritten slots skipped.
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    for r in ring.snapshot() {
                        check_record(&r);
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();

        let total = u64::from(threads) * per_thread;
        assert_eq!(ring.recorded(), total);
        let stable = ring.snapshot();
        assert_eq!(
            stable.len() as u64 + ring.dropped(),
            total,
            "every record is retained stable or counted dropped"
        );
        assert_eq!(
            stable.len(),
            ring.capacity(),
            "a quiesced full ring retains exactly capacity records"
        );
        for r in &stable {
            check_record(r);
        }
        // snapshot() is claim-order sorted; within one lane the claim
        // order must agree with program order even across wrap-around.
        for lane in 0..threads {
            let mut last: Option<u64> = None;
            for r in stable.iter().filter(|r| r.lane == Some(lane)) {
                if let Some(prev) = last {
                    assert!(
                        r.elapsed_ns > prev,
                        "lane {lane}: overwrite-oldest reordered surviving spans"
                    );
                }
                last = Some(r.elapsed_ns);
            }
        }
    }
}
