//! Per-replica failover accounting for the replicated serving layer.
//!
//! Every replica in a `serving::ReplicaGroup` owns one [`ReplicaCounters`]:
//! lock-free monotonic counters the router bumps as it places, retries,
//! marks down, and probes replicas. [`ReplicaStats`] is the plain-data
//! snapshot ([`ReplicaCounters::snapshot`]); [`failover_summary`] folds a
//! group's (or a whole fleet's) per-replica snapshots into one aggregate
//! for the serving summary line.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free monotonic counters for one replica.
#[derive(Debug, Default)]
pub struct ReplicaCounters {
    searches: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
    markdowns: AtomicU64,
    probes: AtomicU64,
    recoveries: AtomicU64,
    latency_ns: AtomicU64,
}

impl ReplicaCounters {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A search attempt was placed on this replica.
    pub fn record_search(&self) {
        self.searches.fetch_add(1, Ordering::Relaxed);
    }

    /// An attempt on this replica failed.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A failed attempt on this replica was retried on a sibling.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// This replica was marked down (taken out of routing).
    pub fn record_markdown(&self) {
        self.markdowns.fetch_add(1, Ordering::Relaxed);
    }

    /// A marked-down replica was probed with live traffic.
    pub fn record_probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
    }

    /// A probe succeeded and the replica rejoined routing.
    pub fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `ns` to the replica's accumulated successful-search latency
    /// (the load signal for latency-aware routing).
    pub fn record_latency_ns(&self, ns: u64) {
        self.latency_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulated successful-search latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.latency_ns.load(Ordering::Relaxed)
    }

    /// Plain-data snapshot of every counter.
    pub fn snapshot(&self) -> ReplicaStats {
        ReplicaStats {
            searches: self.searches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            markdowns: self.markdowns.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            latency_ns: self.latency_ns.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one replica's failover counters (also used, summed, as a
/// group/fleet aggregate — see [`failover_summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Search attempts placed on the replica (probes included).
    pub searches: u64,
    /// Attempts that failed.
    pub errors: u64,
    /// Failed attempts that were retried on a sibling replica.
    pub retries: u64,
    /// Times the replica was marked down.
    pub markdowns: u64,
    /// Live-traffic probes sent while marked down.
    pub probes: u64,
    /// Probes that succeeded and restored the replica.
    pub recoveries: u64,
    /// Accumulated successful-search latency (nanoseconds).
    pub latency_ns: u64,
}

impl ReplicaStats {
    /// Element-wise sum with `other`.
    pub fn merged(self, other: ReplicaStats) -> ReplicaStats {
        ReplicaStats {
            searches: self.searches + other.searches,
            errors: self.errors + other.errors,
            retries: self.retries + other.retries,
            markdowns: self.markdowns + other.markdowns,
            probes: self.probes + other.probes,
            recoveries: self.recoveries + other.recoveries,
            latency_ns: self.latency_ns + other.latency_ns,
        }
    }

    /// JSON form of the structural counters.
    ///
    /// `latency_ns` is wall-clock and deliberately omitted so the object is
    /// byte-stable across identically-seeded runs.
    pub fn to_json(&self) -> crate::Json {
        crate::Json::Obj(vec![
            ("searches".into(), crate::Json::uint(self.searches)),
            ("errors".into(), crate::Json::uint(self.errors)),
            ("retries".into(), crate::Json::uint(self.retries)),
            ("markdowns".into(), crate::Json::uint(self.markdowns)),
            ("probes".into(), crate::Json::uint(self.probes)),
            ("recoveries".into(), crate::Json::uint(self.recoveries)),
        ])
    }
}

/// Folds per-replica snapshots into one aggregate (element-wise sums).
pub fn failover_summary(stats: &[ReplicaStats]) -> ReplicaStats {
    stats
        .iter()
        .fold(ReplicaStats::default(), |acc, s| acc.merged(*s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = ReplicaCounters::new();
        c.record_search();
        c.record_search();
        c.record_error();
        c.record_retry();
        c.record_markdown();
        c.record_probe();
        c.record_recovery();
        c.record_latency_ns(1500);
        let s = c.snapshot();
        assert_eq!(s.searches, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.markdowns, 1);
        assert_eq!(s.probes, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.latency_ns, 1500);
        assert_eq!(c.latency_ns(), 1500);
    }

    #[test]
    fn summary_sums_elementwise() {
        let a = ReplicaStats {
            searches: 3,
            errors: 1,
            retries: 1,
            markdowns: 0,
            probes: 0,
            recoveries: 0,
            latency_ns: 10,
        };
        let b = ReplicaStats {
            searches: 5,
            errors: 0,
            retries: 0,
            markdowns: 2,
            probes: 1,
            recoveries: 1,
            latency_ns: 20,
        };
        let sum = failover_summary(&[a, b]);
        assert_eq!(sum.searches, 8);
        assert_eq!(sum.errors, 1);
        assert_eq!(sum.retries, 1);
        assert_eq!(sum.markdowns, 2);
        assert_eq!(sum.probes, 1);
        assert_eq!(sum.recoveries, 1);
        assert_eq!(sum.latency_ns, 30);
        assert_eq!(failover_summary(&[]), ReplicaStats::default());
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(ReplicaCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.record_search();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().searches, 400);
    }
}
