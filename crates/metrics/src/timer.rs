//! Named wall-clock phases for indexing-time breakdowns (Figures 1, 15;
//! Table 4).

use std::time::{Duration, Instant};

/// Accumulates named phase durations; phases can repeat and accumulate.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, accumulating into phase `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(name, t0.elapsed());
        out
    }

    /// Adds an externally measured duration to phase `name`.
    pub fn add(&mut self, name: &str, d: Duration) {
        if let Some(slot) = self.phases.iter_mut().find(|(n, _)| n == name) {
            slot.1 += d;
        } else {
            self.phases.push((name.to_string(), d));
        }
    }

    /// Accumulated duration of `name` (zero if never recorded).
    pub fn get(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Fraction of the total spent in `name`.
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.get(name).as_secs_f64() / total
        }
    }

    /// `(name, duration)` pairs in insertion order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_repeated_phases() {
        let mut t = PhaseTimer::new();
        t.add("a", Duration::from_millis(10));
        t.add("a", Duration::from_millis(5));
        t.add("b", Duration::from_millis(5));
        assert_eq!(t.get("a"), Duration::from_millis(15));
        assert_eq!(t.total(), Duration::from_millis(20));
        assert!((t.fraction("a") - 0.75).abs() < 1e-9);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = PhaseTimer::new();
        let v = t.time("work", || 42);
        assert_eq!(v, 42);
        assert!(t.get("work") >= Duration::ZERO);
    }

    #[test]
    fn missing_phase_is_zero() {
        let t = PhaseTimer::new();
        assert_eq!(t.get("nope"), Duration::ZERO);
        assert_eq!(t.fraction("nope"), 0.0);
    }
}
