//! Serving-runtime tests: sharded scatter-gather must be *exactly* the
//! unsharded index under exact rerank, the result cache must honor
//! hit/miss/invalidation semantics against a mutating LSM index, and the
//! multi-threaded batch path must be deterministic.
//!
//! Exactness setup: datasets are small enough (`N` vectors) that a beam of
//! `EF ≥ N` makes every connected graph search exhaustive, and the rerank
//! pool (`K · RERANK ≥ N`) rescores every candidate with full-precision
//! distances — so graph indexes, their sharded splits, and the brute-force
//! [`FlatIndex`] all return the identical global `(dist, id)` top-k.

use hnsw_flash::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const N: usize = 200;
const DIM: usize = 16;
const K: usize = 10;
const EF: usize = 256; // > N: exhaustive traversal of connected graphs
const RERANK: usize = 32; // pool K*RERANK = 320 > N: rerank everything

fn workload() -> (VectorSet, VectorSet) {
    generate(&DatasetSpec::new(DIM, 12, 0.95, 0.4, 4), N, 12, 99)
}

fn builder(kind: GraphKind, coding: Coding) -> IndexBuilder {
    IndexBuilder::new(kind, coding)
        .c(32)
        .r(8)
        .seed(7)
        .train_sample(100)
        .pq_m(4)
}

fn exact_request(q: &[f32]) -> SearchRequest {
    SearchRequest::new(q.to_vec(), K).ef(EF).rerank(RERANK)
}

/// Sharded graph indexes return exactly the unsharded index's top-k —
/// which is itself the brute-force top-k — for every shard count 1–8,
/// across ≥3 `GraphKind × Coding` combinations.
#[test]
fn sharded_matches_unsharded_exactly_across_combos() {
    let (base, queries) = workload();
    let flat = FlatIndex::new(base.clone());
    for (kind, coding) in [
        (GraphKind::Hnsw, Coding::Flash),
        (GraphKind::Nsg, Coding::Full),
        (GraphKind::Vamana, Coding::Sq),
        (GraphKind::Hcnng, Coding::Pca),
    ] {
        let b = builder(kind, coding);
        let unsharded = b.build(base.clone());
        for shards in [1usize, 2, 3, 5, 8] {
            let sharded = ShardedIndex::build(base.clone(), &b, shards, ShardPolicy::RoundRobin, 4);
            assert_eq!(sharded.len(), base.len());
            for qi in 0..queries.len() {
                let req = exact_request(queries.get(qi));
                let want = flat.search(&req).hits;
                let via_unsharded = unsharded.search(&req).hits;
                let via_sharded = sharded.search(&req).hits;
                assert_eq!(
                    via_unsharded, want,
                    "{kind:?}x{coding:?} unsharded != exact (query {qi})"
                );
                assert_eq!(
                    via_sharded, want,
                    "{kind:?}x{coding:?} shards={shards} != exact (query {qi})"
                );
            }
        }
    }
}

/// Distance ties that straddle shard boundaries come back in global
/// ascending `(dist, id)` order — duplicated vectors are round-robined
/// into *different* shards, so the gather step must restore id order.
#[test]
fn ties_straddling_shard_boundaries_keep_global_order() {
    let mut base = VectorSet::new(4);
    for i in 0..20 {
        // Vectors 2i and 2i+1 are identical; round-robin over 2 shards
        // places the twins in different shards.
        let v = [i as f32, (i * i) as f32, 1.0, 0.0];
        base.push(&v);
        base.push(&v);
    }
    let parts = ShardedIndex::partition(&base, 2, ShardPolicy::RoundRobin)
        .into_iter()
        .map(|(set, ids)| (Box::new(FlatIndex::new(set)) as Box<dyn AnnIndex>, ids))
        .collect();
    let sharded =
        ShardedIndex::from_parts(parts, ShardPolicy::RoundRobin, Arc::new(WorkerPool::new(4)));
    let global = FlatIndex::new(base.clone());

    for i in [0usize, 7, 19] {
        let req = SearchRequest::new(base.get(2 * i).to_vec(), 6);
        let (want, got) = (global.search(&req).hits, sharded.search(&req).hits);
        assert_eq!(got, want, "query at twin pair {i}");
        // The twin pair ties at distance 0 and must lead, ordered by id.
        assert_eq!(got[0].id, 2 * i as u64);
        assert_eq!(got[1].id, 2 * i as u64 + 1);
        assert_eq!(got[0].dist, 0.0);
        assert_eq!(got[1].dist, 0.0);
        for w in got.windows(2) {
            assert!(
                (w[0].dist, w[0].id) < (w[1].dist, w[1].id),
                "global (dist, id) order violated"
            );
        }
    }
}

/// Cache semantics against a mutating index: hit after insert-into-cache,
/// wholesale miss after the LSM generation moves (insert/delete/rebuild),
/// correct results after re-population.
#[test]
fn query_cache_invalidates_on_lsm_mutation() {
    let mut config = LsmConfig::for_dim(8);
    config.memtable_cap = 1024; // keep everything in the exact memtable
    let mut lsm = LsmVectorIndex::new(config);
    for i in 0..40 {
        let v: Vec<f32> = (0..8).map(|d| ((i * 7 + d * 3) % 23) as f32).collect();
        lsm.insert(&v);
    }

    let cache = QueryCache::new(16);
    cache.set_generation(lsm.generation());
    let query: Vec<f32> = lsm_vector(5);
    let req = SearchRequest::new(query.clone(), 5);
    let key = QueryCache::key_of(&req).expect("unfiltered requests are cacheable");

    // Cold miss → populate → hit with identical hits.
    assert!(cache.get(key, &req).is_none());
    let computed_at = cache.generation();
    let first = AnnIndex::search(&lsm, &req);
    cache.insert(key, &req, computed_at, Arc::new(first.clone()));
    let hit = cache.get(key, &req).expect("second lookup must hit");
    assert_eq!(hit.hits, first.hits);

    // Insert bumps the generation → the entry is stale → miss.
    let pre = lsm.generation();
    let new_id = lsm.insert(&query); // exact duplicate of the query
    assert!(lsm.generation() > pre, "insert must bump the generation");
    cache.set_generation(lsm.generation());
    assert!(cache.get(key, &req).is_none(), "stale entry must miss");

    // Re-populate: the fresh result now contains the inserted duplicate,
    // tied at distance 0 behind the equal vectors with smaller ids.
    let second = AnnIndex::search(&lsm, &req);
    assert_eq!(second.hits[0], Hit { id: 5, dist: 0.0 });
    assert!(
        second.hits.iter().any(|h| h.id == new_id && h.dist == 0.0),
        "inserted duplicate must surface: {:?}",
        second.hits
    );
    cache.insert(key, &req, cache.generation(), Arc::new(second.clone()));
    assert_eq!(cache.get(key, &req).unwrap().hits, second.hits);

    // Delete and rebuild bump too.
    let g = lsm.generation();
    assert!(lsm.delete(new_id));
    assert!(lsm.generation() > g);
    let g = lsm.generation();
    lsm.rebuild();
    assert!(lsm.generation() > g);
    cache.set_generation(lsm.generation());
    assert!(cache.get(key, &req).is_none());

    let stats = cache.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 3);
}

fn lsm_vector(i: usize) -> Vec<f32> {
    (0..8).map(|d| ((i * 7 + d * 3) % 23) as f32).collect()
}

/// Cache behavior under a realistic stream: Zipf-skewed repeats against a
/// mutating LSM index. The hit/miss counters are checked against a
/// hand-computed model at every stage — Zipf skew drives the steady-state
/// hit rate well up, a generation bump drops the hit rate on the next
/// full pool pass to exactly zero, and the pass after that recovers to
/// exactly one hit per pool entry.
#[test]
fn zipf_stream_hit_rate_collapses_and_recovers_on_generation_bump() {
    use rand::distributions::Zipf;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut config = LsmConfig::for_dim(8);
    config.memtable_cap = 1024;
    let mut lsm = LsmVectorIndex::new(config);
    for i in 0..40 {
        lsm.insert(&lsm_vector(i));
    }

    const POOL: usize = 32;
    let cache = QueryCache::new(2 * POOL); // never evicts: misses are only cold or stale
    cache.set_generation(lsm.generation());
    // Distinct query vectors (lsm_vector has period 23, which would alias
    // pool entries onto the same cache key).
    let pool: Vec<SearchRequest> = (0..POOL)
        .map(|i| {
            let q: Vec<f32> = (0..8).map(|d| (i * 8 + d) as f32 * 0.25).collect();
            SearchRequest::new(q, 5)
        })
        .collect();
    let keys: Vec<u64> = pool
        .iter()
        .map(|req| QueryCache::key_of(req).expect("cacheable"))
        .collect();

    // The hand-computed model: which pool entries are populated under the
    // *current* generation, plus expected cumulative counters.
    struct Trace {
        populated: [bool; POOL],
        hits: u64,
        misses: u64,
    }
    fn lookup(
        cache: &QueryCache,
        pool: &[SearchRequest],
        keys: &[u64],
        idx: usize,
        lsm: &LsmVectorIndex,
        trace: &mut Trace,
    ) -> bool {
        let (req, key) = (&pool[idx], keys[idx]);
        match cache.get(key, req) {
            Some(resp) => {
                assert!(
                    trace.populated[idx],
                    "hit on an entry the model says is absent"
                );
                assert_eq!(resp.hits, AnnIndex::search(lsm, req).hits, "stale payload");
                trace.hits += 1;
                true
            }
            None => {
                assert!(
                    !trace.populated[idx],
                    "miss on an entry the model says is present"
                );
                let resp = AnnIndex::search(lsm, req);
                cache.insert(key, req, cache.generation(), Arc::new(resp));
                trace.populated[idx] = true;
                trace.misses += 1;
                false
            }
        }
    }
    let mut trace = Trace {
        populated: [false; POOL],
        hits: 0,
        misses: 0,
    };

    // Steady state: 200 Zipf-skewed draws. Skew means the head indexes
    // repeat constantly, so the stream hit rate must clear 50% even
    // though every first touch is a cold miss.
    let mut rng = SmallRng::seed_from_u64(0xCAFE);
    let zipf = Zipf::new(POOL, 1.2);
    let mut stream_hits = 0u64;
    for _ in 0..200 {
        if lookup(
            &cache,
            &pool,
            &keys,
            zipf.sample(&mut rng),
            &lsm,
            &mut trace,
        ) {
            stream_hits += 1;
        }
    }
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (trace.hits, trace.misses));
    assert_eq!(stats.hits, stream_hits);
    assert!(
        stream_hits as f64 / 200.0 > 0.5,
        "Zipf head must dominate: {stream_hits}/200 hits"
    );

    // Mutation: the generation moves, every cached entry goes stale.
    lsm.insert(&lsm_vector(100));
    cache.set_generation(lsm.generation());
    trace.populated = [false; POOL];

    // The very next pass over the full pool hits ZERO times...
    let mut post_bump_hits = 0u64;
    for idx in 0..POOL {
        if lookup(&cache, &pool, &keys, idx, &lsm, &mut trace) {
            post_bump_hits += 1;
        }
    }
    assert_eq!(
        post_bump_hits, 0,
        "no entry may survive the generation bump"
    );

    // ...and the pass after that hits every single time (recovery).
    let mut recovery_hits = 0u64;
    for idx in 0..POOL {
        if lookup(&cache, &pool, &keys, idx, &lsm, &mut trace) {
            recovery_hits += 1;
        }
    }
    assert_eq!(
        recovery_hits, POOL as u64,
        "repopulated pool must fully hit"
    );

    // A delete invalidates just as hard.
    assert!(lsm.delete(0));
    cache.set_generation(lsm.generation());
    trace.populated = [false; POOL];
    assert!(cache.get(keys[0], &pool[0]).is_none());
    trace.misses += 1; // the raw get() above counts as a miss without repopulating

    // Final ledger: every counter matches the hand-computed trace.
    let stats = cache.stats();
    assert_eq!(stats.hits, trace.hits);
    assert_eq!(stats.misses, trace.misses);
    assert_eq!(stats.hits, stream_hits + recovery_hits);
    assert_eq!(
        stats.misses,
        (200 - stream_hits) + POOL as u64 + 1,
        "misses = cold stream misses + post-bump pool pass + final stale probe"
    );
    assert_eq!(stats.uncacheable, 0);
}

/// Cache semantics across a failover: a `CachedIndex` over a
/// `ReplicaGroup` must never serve a response cached under a generation
/// that a replica mark-down has since invalidated, and the hit/miss
/// accounting must stay exact even when the underlying searches retried
/// onto a sibling.
#[test]
fn cache_over_replica_group_invalidates_on_failover() {
    let (base, queries) = workload();
    // Replica 0 serves its first call, then dies; replica 1 never fails.
    let replica: std::sync::Arc<dyn AnnIndex> = std::sync::Arc::new(FlatIndex::new(base.clone()));
    let group = std::sync::Arc::new(ReplicaGroup::from_replicas(
        vec![
            Box::new(FaultyIndex::new(
                std::sync::Arc::clone(&replica),
                FaultPlan::new().die_at(1),
            )),
            Box::new(std::sync::Arc::clone(&replica)),
        ],
        RoutingPolicy::Primary,
        HealthConfig::default(),
    ));
    let cached = CachedIndex::new(
        std::sync::Arc::clone(&group) as std::sync::Arc<dyn AnnIndex>,
        16,
    );
    cached.cache().set_generation(group.generation());

    // Cold miss, computed by replica 0 under generation 0, then a hit.
    let req_a = exact_request(queries.get(0));
    let first = cached.search(&req_a);
    assert_eq!(cached.search(&req_a).hits, first.hits);
    assert_eq!(group.generation(), 0);

    // A different query trips replica 0's death: the search retries onto
    // replica 1 (one miss, not two) and the mark-down bumps the group
    // generation.
    let req_b = exact_request(queries.get(1));
    let fresh = cached.search(&req_b);
    assert_eq!(fresh.hits, FlatIndex::new(base.clone()).search(&req_b).hits);
    assert!(group.is_marked_down(0));
    assert_eq!(group.generation(), 1);
    assert_eq!(group.failover_stats().retries, 1);

    // Sync the failover generation into the cache: the entry computed by
    // the now-marked-down replica's generation must miss, not serve.
    cached.cache().set_generation(group.generation());
    let recomputed = cached.search(&req_a);
    assert_eq!(
        recomputed.hits, first.hits,
        "replicas are identical, so the recomputed response matches"
    );
    // And the recomputed entry (generation 1) is a hit again.
    assert_eq!(cached.search(&req_a).hits, first.hits);

    // Exact accounting across the retries: A cold miss, A hit, B cold
    // miss (served via failover), A stale miss, A hit.
    let stats = cached.cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.uncacheable), (2, 3, 0));
}

/// A cached sharded index serves repeated requests from memory with
/// identical responses.
#[test]
fn cached_sharded_index_serves_repeats_from_memory() {
    let (base, queries) = workload();
    let sharded = ShardedIndex::build(
        base,
        &builder(GraphKind::Hnsw, Coding::Full),
        4,
        ShardPolicy::Hash,
        4,
    );
    let cached = CachedIndex::new(Arc::new(sharded), 64);
    let req = exact_request(queries.get(0));
    let first = cached.search(&req);
    let second = cached.search(&req);
    assert_eq!(first.hits, second.hits);
    let stats = cached.cache().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    // Filtered requests bypass the cache (no canonical key for closures).
    let _ = cached.search(&exact_request(queries.get(1)).filter(|id| id % 2 == 0));
    assert_eq!(cached.cache().stats().uncacheable, 1);

    // Batch path: cached repeats hit, fresh queries miss once, and the
    // responses equal the one-at-a-time path.
    let batch: Vec<SearchRequest> = (0..6).map(|qi| exact_request(queries.get(qi))).collect();
    let batched = cached.search_batch(&batch);
    for (req, got) in batch.iter().zip(&batched) {
        assert_eq!(got.hits, cached.search(req).hits);
    }
    let stats = cached.cache().stats();
    // 1 single hit + 1 batch hit (query 0) + 6 per-loop hits above = 8;
    // misses: query 0 once + queries 1..6 once each in the batch = 6.
    assert_eq!((stats.hits, stats.misses), (8, 6));

    // Duplicate misses inside one batch share one inner search and all
    // receive the identical response.
    let dup = vec![exact_request(queries.get(7)); 3];
    let dup_responses = cached.search_batch(&dup);
    assert_eq!(dup_responses[0].hits, dup_responses[1].hits);
    assert_eq!(dup_responses[1].hits, dup_responses[2].hits);
    assert_eq!(dup_responses[0].hits, cached.search(&dup[0]).hits);
}

/// A ≥4-thread batch workload over a sharded index is deterministic: two
/// runs and the one-at-a-time path all agree exactly.
#[test]
fn multithreaded_batch_workload_is_deterministic() {
    let (base, _) = workload();
    let queries = generate(&DatasetSpec::new(DIM, 12, 0.95, 0.4, 4), 1, 64, 4242).1;
    let build = || {
        ShardedIndex::build(
            base.clone(),
            &builder(GraphKind::Hnsw, Coding::Flash),
            4,
            ShardPolicy::RoundRobin,
            4,
        )
    };
    let index_a = Arc::new(build());
    assert_eq!(index_a.threads(), 4);
    assert_eq!(index_a.shard_count(), 4);
    let requests: Vec<SearchRequest> = (0..queries.len())
        .map(|qi| exact_request(queries.get(qi)))
        .collect();

    let run = |index: Arc<ShardedIndex>| {
        let mut executor = BatchExecutor::new(index).batch_size(7);
        executor.submit_all(requests.iter().cloned());
        executor.run()
    };
    let report_a = run(Arc::clone(&index_a));
    let report_b = run(Arc::new(build()));
    assert_eq!(report_a.responses.len(), 64);
    assert_eq!(report_a.batches, 10); // ceil(64 / 7)
    for (a, b) in report_a.responses.iter().zip(&report_b.responses) {
        assert_eq!(a.hits, b.hits, "two runs diverged");
    }
    for (req, a) in requests.iter().zip(&report_a.responses) {
        assert_eq!(
            a.hits,
            index_a.search(req).hits,
            "batch and single-shot paths diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scatter-gather over brute-force shards equals the single
    /// brute-force index for random data, any shard count 1–8, both
    /// policies, including tie-heavy integer-grid datasets.
    #[test]
    fn scatter_gather_topk_equals_single_index(
        cells in proptest::collection::vec(0u8..5, 20 * 4..81 * 4),
        shards in 1usize..=8,
        hash_policy in any::<bool>(),
        k in 1usize..=12,
    ) {
        let dim = 4;
        let n = cells.len() / dim;
        let mut base = VectorSet::new(dim);
        for i in 0..n {
            let v: Vec<f32> = cells[i * dim..(i + 1) * dim].iter().map(|&c| c as f32).collect();
            base.push(&v);
        }
        let policy = if hash_policy { ShardPolicy::Hash } else { ShardPolicy::RoundRobin };
        let parts = ShardedIndex::partition(&base, shards, policy)
            .into_iter()
            .map(|(set, ids)| (Box::new(FlatIndex::new(set)) as Box<dyn AnnIndex>, ids))
            .collect();
        let sharded = ShardedIndex::from_parts(parts, policy, Arc::new(WorkerPool::new(4)));
        let global = FlatIndex::new(base.clone());
        prop_assert_eq!(sharded.len(), n);

        let query = base.get(n / 2).to_vec(); // lands on tie-rich grid points
        let req = SearchRequest::new(query, k);
        let (want, got) = (global.search(&req).hits, sharded.search(&req).hits);
        prop_assert_eq!(got, want);
    }
}
