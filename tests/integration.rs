//! Cross-crate integration tests: every construction method, every graph
//! algorithm, every search variant, exercised end-to-end on a common
//! workload.
//!
//! Dataset dimensionality is kept small (64-d) so the suite stays fast in
//! debug builds; the benchmark harness covers paper-scale dimensions.

use hnsw_flash::prelude::*;
use vecstore::split_into_segments;

/// Shared workload: clustered 64-d embeddings.
fn workload(n: usize, n_queries: usize) -> (VectorSet, VectorSet) {
    let spec = DatasetSpec::new(64, 80, 0.97, 0.35, 77);
    generate(&spec, n, n_queries, 1234)
}

fn recall_of(found: &[Vec<u32>], gt: &[Vec<vecstore::Neighbor>], k: usize) -> f64 {
    recall_at_k(found, gt, k).recall()
}

#[test]
fn all_five_methods_reach_high_recall() {
    let (base, queries) = workload(1_200, 40);
    let k = 5;
    let ef = 64;
    let gt = ground_truth(&base, &queries, k);
    let params = HnswParams {
        c: 64,
        r: 8,
        seed: 3,
    };

    let mut results: Vec<(&str, f64)> = Vec::new();

    let full = Hnsw::build(FullPrecision::new(base.clone()), params);
    let found: Vec<Vec<u32>> = (0..40)
        .map(|qi| {
            full.search(queries.get(qi), k, ef)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    results.push(("HNSW", recall_of(&found, &gt, k)));

    let pq = Hnsw::build(PqProvider::new(base.clone(), 8, 8, 800, 5), params);
    let found: Vec<Vec<u32>> = (0..40)
        .map(|qi| {
            pq.search_rerank(queries.get(qi), k, ef, 6)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    results.push(("HNSW-PQ", recall_of(&found, &gt, k)));

    let sq = Hnsw::build(SqProvider::new(base.clone(), 8), params);
    let found: Vec<Vec<u32>> = (0..40)
        .map(|qi| {
            sq.search_rerank(queries.get(qi), k, ef, 4)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    results.push(("HNSW-SQ", recall_of(&found, &gt, k)));

    let pca = Hnsw::build(PcaProvider::new(base.clone(), 32, 800), params);
    let found: Vec<Vec<u32>> = (0..40)
        .map(|qi| {
            pca.search_rerank(queries.get(qi), k, ef, 4)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    results.push(("HNSW-PCA", recall_of(&found, &gt, k)));

    let flash_params = FlashParams {
        d_f: 48,
        m_f: 12,
        train_sample: 800,
        kmeans_iters: 10,
        seed: 7,
        grid_quantile: 0.5,
    };
    let fl = FlashHnsw::build_flash(base, flash_params, params);
    let found: Vec<Vec<u32>> = (0..40)
        .map(|qi| {
            fl.search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    results.push(("HNSW-Flash", recall_of(&found, &gt, k)));

    for (name, recall) in &results {
        assert!(*recall >= 0.85, "{name} recall {recall} below threshold");
    }
}

#[test]
fn compressed_indexes_are_smaller_than_baseline() {
    let (base, _) = workload(800, 1);
    let params = HnswParams {
        c: 48,
        r: 8,
        seed: 4,
    };

    let full = Hnsw::build(FullPrecision::new(base.clone()), params);
    let fl = FlashHnsw::build_flash(
        base,
        FlashParams {
            d_f: 32,
            m_f: 8,
            train_sample: 600,
            kmeans_iters: 8,
            seed: 9,
            grid_quantile: 0.5,
        },
        params,
    );
    assert!(
        fl.index_bytes() < full.index_bytes(),
        "Flash {} bytes vs baseline {}",
        fl.index_bytes(),
        full.index_bytes()
    );
}

#[test]
fn flash_generalizes_to_nsg_and_taumg() {
    let (base, queries) = workload(900, 20);
    let k = 3;
    let gt = ground_truth(&base, &queries, k);
    let flash_params = FlashParams {
        d_f: 48,
        m_f: 12,
        train_sample: 700,
        kmeans_iters: 10,
        seed: 2,
        grid_quantile: 0.5,
    };

    let nsg = build_flash_nsg(
        base.clone(),
        flash_params,
        NsgParams {
            r: 12,
            c: 96,
            seed: 6,
        },
    );
    let found: Vec<Vec<u32>> = (0..20)
        .map(|qi| {
            nsg.search_rerank(queries.get(qi), k, 96, 16)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    let nsg_recall = recall_of(&found, &gt, k);
    // The paper's Figure 14 shows NSG-Flash trades a little recall for its
    // construction speedup; 0.75 at this tiny scale matches that shape.
    assert!(nsg_recall >= 0.75, "NSG-Flash recall {nsg_recall}");

    let taumg = build_flash_taumg(
        base,
        flash_params,
        TauMgParams {
            flat: NsgParams {
                r: 8,
                c: 48,
                seed: 6,
            },
            tau: 0.2,
        },
    );
    // τ-MG search uses quantized distances; rerank manually via ids.
    let found: Vec<Vec<u32>> = (0..20)
        .map(|qi| {
            taumg
                .search(queries.get(qi), k * 8, 64)
                .iter()
                .map(|r| r.id as u32)
                .collect::<Vec<u32>>()
        })
        .collect();
    // Just containment of true top-1 in the pool (τ-MG has no rerank API).
    let mut hit = 0;
    for (qi, pool) in found.iter().enumerate() {
        if pool.contains(&gt[qi][0].id) {
            hit += 1;
        }
    }
    assert!(hit >= 16, "τ-MG-Flash top-1 containment {hit}/20");
}

#[test]
fn search_variants_work_on_flash_built_graphs() {
    let (base, queries) = workload(900, 20);
    let k = 3;
    let gt = ground_truth(&base, &queries, k);
    let fl = FlashHnsw::build_flash(
        base.clone(),
        FlashParams {
            d_f: 48,
            m_f: 12,
            train_sample: 700,
            kmeans_iters: 10,
            seed: 8,
            grid_quantile: 0.5,
        },
        HnswParams {
            c: 64,
            r: 8,
            seed: 1,
        },
    );
    let graph = fl.freeze();

    // ADSampling over the Flash-built topology, exact distances.
    let sampler = graphs::adsampling::AdSampler::new(&base, 2.1, 16, 3);
    let mut hits = 0;
    for qi in 0..20 {
        let (found, _) = sampler.search(&graph, queries.get(qi), k, 64);
        let ids: Vec<u32> = found.iter().map(|r| r.id as u32).collect();
        hits += gt[qi][..k].iter().filter(|t| ids.contains(&t.id)).count();
    }
    assert!(
        hits as f64 / 60.0 >= 0.85,
        "ADSampling recall {}",
        hits as f64 / 60.0
    );

    // VBase termination over the same graph with the full-precision provider.
    let full = FullPrecision::new(base);
    let mut hits = 0;
    for qi in 0..20 {
        let found = graphs::vbase::search_vbase(&full, &graph, queries.get(qi), k, 48);
        let ids: Vec<u32> = found.iter().map(|r| r.id as u32).collect();
        hits += gt[qi][..k].iter().filter(|t| ids.contains(&t.id)).count();
    }
    assert!(
        hits as f64 / 60.0 >= 0.85,
        "VBase recall {}",
        hits as f64 / 60.0
    );
}

#[test]
fn segmented_rebuild_preserves_recall() {
    let (base, queries) = workload(1_000, 20);
    let k = 3;
    let gt = ground_truth(&base, &queries, k);
    let segments = split_into_segments(&base, 4);
    let offsets: Vec<u32> = segments
        .iter()
        .scan(0u32, |acc, s| {
            let start = *acc;
            *acc += s.len() as u32;
            Some(start)
        })
        .collect();

    let indexes: Vec<FlashHnsw> = segments
        .iter()
        .map(|seg| {
            FlashHnsw::build_flash(
                seg.clone(),
                FlashParams {
                    d_f: 32,
                    m_f: 8,
                    train_sample: 250,
                    kmeans_iters: 8,
                    seed: 4,
                    grid_quantile: 0.5,
                },
                HnswParams {
                    c: 48,
                    r: 8,
                    seed: 2,
                },
            )
        })
        .collect();

    let mut found = Vec::new();
    for qi in 0..20 {
        let mut merged: Vec<Hit> = indexes
            .iter()
            .enumerate()
            .flat_map(|(s, idx)| {
                let off = offsets[s];
                idx.search_rerank(queries.get(qi), k, 48, 8)
                    .into_iter()
                    .map(move |r| Hit {
                        id: r.id + u64::from(off),
                        dist: r.dist,
                    })
            })
            .collect();
        merged.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        merged.truncate(k);
        found.push(
            merged
                .into_iter()
                .map(|r| r.id as u32)
                .collect::<Vec<u32>>(),
        );
    }
    let recall = recall_of(&found, &gt, k);
    assert!(recall >= 0.85, "segmented recall {recall}");
}

#[test]
fn fvecs_roundtrip_feeds_the_index() {
    let (base, queries) = workload(400, 5);
    let dir = std::env::temp_dir().join(format!("hnsw_flash_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("base.fvecs");
    vecstore::io::write_fvecs(&path, &base).unwrap();
    let reloaded = vecstore::io::read_fvecs(&path).unwrap();
    assert_eq!(reloaded, base);

    let index = Hnsw::build(
        FullPrecision::new(reloaded),
        HnswParams {
            c: 32,
            r: 8,
            seed: 1,
        },
    );
    let hits = index.search(queries.get(0), 3, 32);
    assert_eq!(hits.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simd_level_override_does_not_change_results() {
    let (base, queries) = workload(600, 10);
    let params = HnswParams {
        c: 48,
        r: 8,
        seed: 11,
    };
    let collect = || -> Vec<Vec<u32>> {
        let index = Hnsw::build(FullPrecision::new(base.clone()), params);
        (0..10)
            .map(|qi| {
                index
                    .search(queries.get(qi), 5, 48)
                    .iter()
                    .map(|r| r.id as u32)
                    .collect()
            })
            .collect()
    };
    let with_default = collect();
    simdops::level::with_level(SimdLevel::Scalar, || {
        let scalar = collect();
        assert_eq!(
            with_default, scalar,
            "dispatch level must not affect results"
        );
    });
}
