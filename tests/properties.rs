//! Property-based tests over the core data structures and the invariants
//! the paper's correctness rests on.

use hnsw_flash::prelude::*;
use proptest::prelude::*;
use simdops::{lut::lut16_batch_scalar, lut16_batch, LUT_BATCH};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SIMD LUT kernel is bit-identical to the scalar oracle for any
    /// table/code contents and any subspace count.
    #[test]
    fn lut_kernel_matches_scalar(
        m in 1usize..24,
        tables in proptest::collection::vec(any::<u8>(), 24 * 16),
        codes in proptest::collection::vec(0u8..16, 24 * 16),
    ) {
        let tables = &tables[..m * 16];
        let codes = &codes[..m * 16];
        let mut simd = [0u16; LUT_BATCH];
        let mut scalar = [0u16; LUT_BATCH];
        lut16_batch(tables, codes, m, &mut simd);
        lut16_batch_scalar(tables, codes, m, &mut scalar);
        prop_assert_eq!(simd, scalar);
    }

    /// f32 L2 kernels agree across dispatch tiers within float tolerance.
    #[test]
    fn l2_kernels_agree_across_levels(
        v in proptest::collection::vec(-100.0f32..100.0, 1..200),
        w in proptest::collection::vec(-100.0f32..100.0, 1..200),
    ) {
        let n = v.len().min(w.len());
        let (a, b) = (&v[..n], &w[..n]);
        let reference = simdops::f32dist::l2_sq_scalar(a, b);
        for level in simdops::level::supported_levels() {
            let got = simdops::level::with_level(level, || simdops::l2_sq(a, b));
            let tol = 1e-3 * (1.0 + reference.abs());
            prop_assert!((got - reference).abs() <= tol,
                "level {:?}: {} vs {}", level, got, reference);
        }
    }

    /// SQ round-trip error is bounded by half a quantization step per
    /// dimension.
    #[test]
    fn sq_roundtrip_error_bounded(
        rows in proptest::collection::vec(
            proptest::collection::vec(-50.0f32..50.0, 8), 2..40),
    ) {
        let dim = 8;
        let mut set = VectorSet::new(dim);
        for r in &rows {
            set.push(r);
        }
        let sq = ScalarQuantizer::train(&set, 8, quantizers::sq::SqRange::PerDimension);
        for v in set.iter() {
            let rec = quantizers::Codec::reconstruct(&sq, v);
            for (i, (&x, &y)) in v.iter().zip(rec.iter()).enumerate() {
                // Per-dim delta = range / 255; worst error is delta/2.
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for r in set.iter() {
                    lo = lo.min(r[i]);
                    hi = hi.max(r[i]);
                }
                let delta = (hi - lo) / 255.0;
                prop_assert!((x - y).abs() <= delta * 0.5 + 1e-4);
            }
        }
    }

    /// Ground truth is sorted ascending with unique ids, and its first hit
    /// is at least as close as any database vector.
    #[test]
    fn ground_truth_invariants(
        flat in proptest::collection::vec(-10.0f32..10.0, 30..120),
        q in proptest::collection::vec(-10.0f32..10.0, 3),
    ) {
        let n = flat.len() / 3;
        let set = VectorSet::from_flat(3, flat[..n * 3].to_vec());
        let mut queries = VectorSet::new(3);
        queries.push(&q);
        let gt = ground_truth(&set, &queries, 5);
        let row = &gt[0];
        for w in row.windows(2) {
            prop_assert!(w[0].dist_sq <= w[1].dist_sq);
        }
        let mut ids: Vec<u32> = row.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), row.len());
        // Exactness: no vector beats the reported nearest.
        for v in set.iter() {
            prop_assert!(simdops::l2_sq(&q, v) >= row[0].dist_sq - 1e-4);
        }
    }

    /// Splitting into segments preserves content and order.
    #[test]
    fn segments_cover_everything(
        n in 1usize..200,
        segs in 1usize..10,
    ) {
        prop_assume!(segs <= n);
        let set = VectorSet::from_flat(1, (0..n).map(|i| i as f32).collect());
        let parts = vecstore::split_into_segments(&set, segs);
        prop_assert_eq!(parts.len(), segs);
        let mut rebuilt = VectorSet::new(1);
        for p in &parts {
            rebuilt.extend_from(p);
        }
        prop_assert_eq!(rebuilt, set);
    }

    /// The Lemma-1 hyperplane side predicts the exact distance comparison
    /// for arbitrary triples.
    #[test]
    fn lemma1_holds_for_arbitrary_triples(
        u in proptest::collection::vec(-5.0f32..5.0, 6),
        v in proptest::collection::vec(-5.0f32..5.0, 6),
        w in proptest::collection::vec(-5.0f32..5.0, 6),
    ) {
        let side = quantizers::reliability::hyperplane_side(&u, &v, &w);
        let dv = simdops::l2_sq(&u, &v);
        let dw = simdops::l2_sq(&u, &w);
        if (dv - dw).abs() > 1e-3 {
            prop_assert_eq!(side > 0.0, dv > dw);
        }
    }

    /// The cache model never reports more misses than accesses, and a
    /// repeated scan of a cache-sized region has a strictly lower miss rate
    /// than its cold first pass.
    #[test]
    fn cache_model_sanity(addresses in proptest::collection::vec(0u64..4096, 1..300)) {
        let mut sim = cachesim::CacheSim::new(cachesim::CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 4,
        });
        for &a in &addresses {
            sim.access(a);
        }
        let first = sim.stats();
        prop_assert!(first.misses <= first.accesses);
        // Region ≤ cache size → second pass hits everywhere.
        for &a in &addresses {
            sim.access(a);
        }
        let second = sim.stats();
        prop_assert_eq!(second.misses, first.misses, "warm pass must not miss");
    }

    /// Flash codeword blocks always mirror the neighbor-id list they were
    /// synced from (the layout invariant behind the batched CA kernel).
    #[test]
    fn flash_payload_mirrors_ids(pick in proptest::collection::vec(0u32..200, 0..40)) {
        use graphs::DistanceProvider as _;
        // A fixed small provider is enough; the property is about layout.
        let (base, _) = generate(&DatasetSpec::new(32, 20, 0.95, 0.4, 5), 200, 1, 9);
        let provider = FlashProvider::new(
            base,
            FlashParams {
                d_f: 16,
                m_f: 4,
                train_sample: 150,
                kmeans_iters: 5,
                seed: 3,
                grid_quantile: 0.5,
            },
        );
        let mut payload = flash::FlashBlocks::default();
        provider.sync_payload(&mut payload, &pick);
        prop_assert!(flash::provider::blocks_consistent(&provider, &payload, &pick));
    }
}

/// Non-proptest exhaustive check: FlashCodec's scalar quantizer η is
/// monotone over its whole input range.
#[test]
fn flash_quantize_is_monotone() {
    let (base, _) = generate(&DatasetSpec::new(32, 20, 0.95, 0.4, 5), 300, 1, 4);
    let codec = FlashCodec::train(
        &base,
        FlashParams {
            d_f: 16,
            m_f: 4,
            train_sample: 200,
            kmeans_iters: 5,
            seed: 6,
            grid_quantile: 0.5,
        },
    );
    let mut prev = 0u8;
    let mut d = 0.0f32;
    while d < 1e6 {
        let q = codec.quantize(d);
        assert!(q >= prev, "quantize not monotone at {d}");
        prev = q;
        d = (d * 1.3).max(d + 1e-3);
    }
    assert_eq!(codec.quantize(f32::MAX), 255);
}
