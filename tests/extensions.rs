//! Cross-crate integration tests for the extension systems: Vamana, HCNNG,
//! OPQ, filtered search, and the LSM maintenance pipeline.

use flash::{build_flash_hcnng, build_flash_vamana, BuildFlash, FlashParams, FlashProvider};
use graphs::providers::{FullPrecision, OpqProvider};
use graphs::{
    Hcnng, HcnngParams, Hnsw, HnswParams, LabeledHnsw, LabeledParams, Vamana, VamanaParams,
};
use maintenance::{LsmConfig, LsmVectorIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vecstore::{generate, ground_truth, DatasetProfile, VectorSet};

fn workload(n: usize, n_queries: usize) -> (VectorSet, VectorSet) {
    generate(&DatasetProfile::SsnppLike.spec(), n, n_queries, 0xE57)
}

fn recall_of(found: &[Vec<u32>], gt: &[Vec<vecstore::Neighbor>], k: usize) -> f64 {
    metrics::recall_at_k(found, gt, k).recall()
}

#[test]
fn vamana_flash_matches_full_precision_recall() {
    let k = 5;
    let (base, queries) = workload(1_500, 30);
    let gt = ground_truth(&base, &queries, k);
    let params = VamanaParams {
        r: 12,
        c: 96,
        alpha: 1.2,
        seed: 0x77,
    };

    let full = Vamana::build(FullPrecision::new(base.clone()), params);
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = 750;
    let flash = build_flash_vamana(base, fp, params);

    let found_full: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            full.search(queries.get(qi), k, 96)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    let found_flash: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            flash
                .search_rerank(queries.get(qi), k, 96, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();

    let r_full = recall_of(&found_full, &gt, k);
    let r_flash = recall_of(&found_flash, &gt, k);
    assert!(r_full >= 0.85, "Vamana full-precision recall {r_full}");
    assert!(
        r_flash >= r_full - 0.10,
        "Vamana-Flash recall {r_flash} vs {r_full}"
    );
}

#[test]
fn hcnng_flash_reaches_reasonable_recall() {
    let k = 5;
    let (base, queries) = workload(1_200, 25);
    let gt = ground_truth(&base, &queries, k);
    let params = HcnngParams {
        trees: 8,
        leaf_size: 48,
        mst_degree: 3,
        seed: 0x88,
    };

    let full = Hcnng::build(FullPrecision::new(base.clone()), params);
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = 600;
    let flash = build_flash_hcnng(base, fp, params);

    let found_full: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            full.search(queries.get(qi), k, 128)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    let found_flash: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            flash
                .search_rerank(queries.get(qi), k, 128, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();

    let r_full = recall_of(&found_full, &gt, k);
    let r_flash = recall_of(&found_flash, &gt, k);
    assert!(r_full >= 0.75, "HCNNG recall {r_full}");
    assert!(
        r_flash >= r_full - 0.15,
        "HCNNG-Flash recall {r_flash} vs {r_full}"
    );
}

#[test]
fn opq_provider_plugs_into_hnsw_with_recall() {
    let k = 5;
    let (base, queries) = workload(1_000, 20);
    let gt = ground_truth(&base, &queries, k);
    let index = Hnsw::build(
        OpqProvider::new(base.clone(), 8, 8, 3, 500, 0x99),
        HnswParams {
            c: 96,
            r: 12,
            seed: 0x9A,
        },
    );
    let found: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            index
                .search_rerank(queries.get(qi), k, 96, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    let recall = recall_of(&found, &gt, k);
    assert!(recall >= 0.80, "HNSW-OPQ recall {recall}");
}

#[test]
fn filtered_search_works_on_flash_built_graph() {
    let (base, queries) = workload(1_000, 10);
    let mut rng = SmallRng::seed_from_u64(0xF0);
    let labels: Vec<u32> = (0..base.len()).map(|_| rng.gen_range(0..4u32)).collect();
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = 500;
    let index = Hnsw::build(
        FlashProvider::new(base.clone(), fp),
        HnswParams {
            c: 96,
            r: 12,
            seed: 0xF1,
        },
    );
    let labels_ref = &labels;
    let accept = move |id: u32| labels_ref[id as usize] == 2;
    for qi in 0..queries.len() {
        let hits = index.search_filtered(queries.get(qi), 5, 96, &accept);
        assert!(
            !hits.is_empty(),
            "query {qi} found nothing with a 25% filter"
        );
        for h in &hits {
            assert_eq!(labels[h.id as usize], 2, "predicate violated");
        }
    }
}

#[test]
fn specialized_labeled_index_with_flash_factory() {
    let (base, queries) = workload(1_200, 5);
    let mut rng = SmallRng::seed_from_u64(0xF2);
    let labels: Vec<u32> = (0..base.len()).map(|_| rng.gen_range(0..3u32)).collect();
    let index = LabeledHnsw::build(
        &base,
        &labels,
        LabeledParams {
            hnsw: HnswParams {
                c: 64,
                r: 8,
                seed: 0xF3,
            },
            min_graph_size: 32,
        },
        |subset| {
            let mut fp = FlashParams::auto(subset.dim());
            fp.train_sample = (subset.len() / 2).clamp(64, 10_000);
            FlashProvider::new(subset, fp)
        },
    );
    assert_eq!(index.partitions(), 3);
    assert_eq!(index.len(), base.len());
    for label in 0..3u32 {
        let hits = index.search(queries.get(0), label, 3, 64);
        assert_eq!(hits.len(), 3);
        for h in &hits {
            assert_eq!(labels[h.id as usize], label);
        }
    }
}

/// Model-based check of the LSM index against a brute-force oracle through
/// a random insert/delete/search workload (multiple seeds).
#[test]
fn lsm_index_agrees_with_oracle_under_churn() {
    for seed in [1u64, 7, 23] {
        let dim = 16;
        let mut config = LsmConfig::for_dim(dim);
        config.memtable_cap = 128;
        config.hnsw = HnswParams { c: 48, r: 8, seed };
        let mut index = LsmVectorIndex::new(config);
        let mut oracle: Vec<(u64, Vec<f32>)> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(seed);

        for step in 0..600 {
            if step % 5 == 4 && !oracle.is_empty() {
                let pick = rng.gen_range(0..oracle.len());
                let (id, _) = oracle.swap_remove(pick);
                assert!(index.delete(id), "oracle said {id} is live");
            } else {
                let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let id = index.insert(&v);
                oracle.push((id, v));
            }
        }
        index.flush();

        let stats = index.stats();
        assert_eq!(
            stats.live,
            oracle.len(),
            "live count mismatch (seed {seed})"
        );

        // Top-1 self-queries must return the queried id (exact duplicates
        // exist in the index).
        for _ in 0..20 {
            let (id, v) = &oracle[rng.gen_range(0..oracle.len())];
            let hits = index.search(v, 1, 128);
            assert_eq!(hits.first().map(|h| h.id), Some(*id), "seed {seed}");
        }

        // Deleted ids never resurface across a rebuild.
        let victim = oracle.swap_remove(0);
        index.delete(victim.0);
        index.rebuild();
        assert!(!index.contains(victim.0));
        let hits = index.search(&victim.1, 3, 128);
        assert!(
            hits.iter().all(|h| h.id != victim.0),
            "tombstone leaked through rebuild"
        );
    }
}

#[test]
fn lsm_rebuild_improves_fragmentation_without_losing_recall() {
    let dim = 24;
    let mut config = LsmConfig::for_dim(dim);
    config.memtable_cap = 200;
    config.hnsw = HnswParams {
        c: 64,
        r: 8,
        seed: 0xAB,
    };
    let mut index = LsmVectorIndex::new(config);
    let mut rng = SmallRng::seed_from_u64(0xAC);
    let mut live: Vec<(u64, Vec<f32>)> = Vec::new();
    for _ in 0..1_200 {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        live.push((index.insert(&v), v));
    }
    for _ in 0..300 {
        let pick = rng.gen_range(0..live.len());
        let (id, _) = live.swap_remove(pick);
        index.delete(id);
    }
    index.flush();

    let probe: Vec<(u64, Vec<f32>)> = (0..15)
        .map(|_| live[rng.gen_range(0..live.len())].clone())
        .collect();
    let hits_self = |index: &LsmVectorIndex| -> usize {
        probe
            .iter()
            .filter(|(id, v)| index.search(v, 1, 96).first().map(|h| h.id) == Some(*id))
            .count()
    };

    let before_frag = index.stats();
    let before_hits = hits_self(&index);
    index.rebuild();
    let after_frag = index.stats();
    let after_hits = hits_self(&index);

    assert!(before_frag.segments > 1);
    assert_eq!(after_frag.segments, 1);
    assert_eq!(after_frag.dead, 0);
    assert!(
        after_hits + 1 >= before_hits,
        "rebuild lost recall: {after_hits} vs {before_hits} of {}",
        probe.len()
    );
}

#[test]
fn cosine_workload_via_normalization() {
    // Cosine similarity = L2 on normalized vectors; the whole stack
    // (including Flash) serves it after `VectorSet::normalize`.
    let (raw, raw_queries) = workload(800, 10);
    let base = raw.normalized();
    let queries = raw_queries.normalized();
    // Exact cosine ground truth from the raw vectors.
    let cos = |a: &[f32], b: &[f32]| {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb)
    };
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = 400;
    let index = Hnsw::build(
        FlashProvider::new(base, fp),
        HnswParams {
            c: 96,
            r: 12,
            seed: 0xC0,
        },
    );
    let mut hit = 0;
    for qi in 0..raw_queries.len() {
        // Most-similar-by-cosine from a linear scan over raw vectors.
        let best = (0..raw.len())
            .max_by(|&a, &b| {
                cos(raw_queries.get(qi), raw.get(a))
                    .total_cmp(&cos(raw_queries.get(qi), raw.get(b)))
            })
            .unwrap() as u64;
        let found = index.search_rerank(queries.get(qi), 1, 96, 8);
        if found.first().map(|h| h.id) == Some(best) {
            hit += 1;
        }
    }
    assert!(hit >= 8, "cosine top-1 recall {hit}/10 via normalization");
}

#[test]
fn normalize_invariants() {
    let (mut set, _) = workload(50, 1);
    set.push(&[0.0; 256]); // zero vector must survive untouched
    set.normalize();
    for v in set.iter().take(50) {
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>();
        assert!((norm - 1.0).abs() < 1e-4, "norm² = {norm}");
    }
    assert!(set.get(50).iter().all(|&x| x == 0.0));
}

#[test]
fn batch_search_matches_sequential() {
    let (base, queries) = workload(600, 8);
    let index = Hnsw::build(
        FullPrecision::new(base),
        HnswParams {
            c: 64,
            r: 8,
            seed: 0xBA,
        },
    );
    let batch = index.search_batch(&queries, 5, 64);
    for qi in 0..queries.len() {
        let seq = index.search(queries.get(qi), 5, 64);
        assert_eq!(batch[qi], seq, "query {qi}");
    }
}

#[test]
fn tuned_flash_params_build_working_index() {
    let (base, queries) = workload(900, 5);
    let gt = ground_truth(&base, &queries, 5);
    let opts = flash::TuneOptions {
        d_f_grid: vec![16, 32, 64],
        m_f_grid: vec![8, 16],
        target_agreement: 0.8,
        triples: 150,
        sample: 500,
        seed: 3,
    };
    let outcome = flash::tune_flash_params(&base, FlashParams::auto(base.dim()), &opts);
    let index = flash::FlashHnsw::build_flash(
        base,
        outcome.params,
        HnswParams {
            c: 96,
            r: 12,
            seed: 0x7D,
        },
    );
    let found: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            index
                .search_rerank(queries.get(qi), 5, 96, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    let recall = metrics::recall_at_k(&found, &gt, 5).recall();
    assert!(recall >= 0.8, "tuned-params recall {recall}");
}
