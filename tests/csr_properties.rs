//! Property tests for the CSR adjacency layout and the pooled search
//! scratch: freezing arbitrary nested adjacency must be lossless (order,
//! empty rows, max-degree rows), persisted graphs must round-trip from the
//! legacy nested format through CSR into the current format, and the
//! steady-state search loop must not allocate per-query scratch.

use graphs::providers::FullPrecision;
use graphs::{
    search_layers, search_layers_cached, CsrLayer, FlatGraph, GraphLayers, Hnsw, HnswParams,
    NodePayloads, LINE_U32S,
};
use proptest::prelude::*;
use vecstore::VectorSet;

/// Arbitrary nested adjacency: raw rows of unconstrained targets, reduced
/// into range by [`normalize`]. Rows span up to 4 cache lines so padding
/// and multi-line rows are exercised; duplicates and self-loops are kept —
/// the layout must preserve whatever the builder hands it.
fn raw_adjacency() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(any::<u32>(), 0..(4 * LINE_U32S)),
        1..24,
    )
}

/// Maps every raw target into `0..n` so the adjacency is well formed.
fn normalize(raw: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = raw.len() as u32;
    raw.iter()
        .map(|row| row.iter().map(|&t| t % n).collect())
        .collect()
}

/// Writes `adj` in the retired v1 nested flat-graph format.
fn v1_flat_bytes(entry: u32, adj: &[Vec<u32>]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"HFGRAPH1");
    bytes.extend_from_slice(b"FL");
    bytes.extend_from_slice(&entry.to_le_bytes());
    bytes.extend_from_slice(&(adj.len() as u32).to_le_bytes());
    for list in adj {
        bytes.extend_from_slice(&(list.len() as u32).to_le_bytes());
        for &id in list {
            bytes.extend_from_slice(&id.to_le_bytes());
        }
    }
    bytes
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hnsw_flash_csrprop_{}_{name}", std::process::id()));
    p
}

proptest! {
    /// CSR freeze is lossless: every row reads back exactly, in order.
    #[test]
    fn csr_round_trips_arbitrary_nested(raw in raw_adjacency()) {
        let adj = normalize(&raw);
        let csr = CsrLayer::from_nested(&adj);
        prop_assert_eq!(csr.len(), adj.len());
        prop_assert_eq!(csr.edges(), adj.iter().map(Vec::len).sum::<usize>());
        for (node, row) in adj.iter().enumerate() {
            prop_assert_eq!(csr.neighbors(node), row.as_slice(), "row {}", node);
            prop_assert_eq!(csr.degree(node), row.len());
        }
        prop_assert_eq!(csr.to_nested(), adj);
    }

    /// Every CSR row starts on a 64-byte boundary, whatever the degrees.
    #[test]
    fn csr_rows_stay_cache_line_aligned(raw in raw_adjacency()) {
        let csr = CsrLayer::from_nested(&normalize(&raw));
        for node in 0..csr.len() {
            let row = csr.neighbors(node);
            if !row.is_empty() {
                prop_assert_eq!(row.as_ptr() as usize % 64, 0, "row {}", node);
            }
        }
    }

    /// Legacy v1 bytes → CSR in memory → current format → identical graph.
    #[test]
    fn persist_round_trips_v1_through_v2(
        raw in raw_adjacency(),
        entry_seed in 0usize..24,
    ) {
        let adj = normalize(&raw);
        let entry = (entry_seed % adj.len()) as u32;
        let path_v1 = tmp(&format!("v1_{entry_seed}_{}", adj.len()));
        std::fs::write(&path_v1, v1_flat_bytes(entry, &adj)).unwrap();
        let loaded = FlatGraph::load(&path_v1).unwrap();
        prop_assert_eq!(&loaded, &FlatGraph::from_nested(&adj, entry));

        let path_v2 = tmp(&format!("v2_{entry_seed}_{}", adj.len()));
        loaded.save(&path_v2).unwrap();
        let reloaded = FlatGraph::load(&path_v2).unwrap();
        prop_assert_eq!(&reloaded, &loaded);
        prop_assert_eq!(reloaded.to_nested(), adj);
        std::fs::remove_file(&path_v1).ok();
        std::fs::remove_file(&path_v2).ok();
    }
}

#[test]
fn csr_handles_max_degree_and_empty_rows() {
    // One empty row, one row spanning many cache lines, one single-entry
    // row: degrees that straddle every padding case.
    let big: Vec<u32> = (0..197u32).map(|i| i % 3).collect();
    let adj = vec![Vec::new(), big.clone(), vec![0]];
    let csr = CsrLayer::from_nested(&adj);
    assert_eq!(csr.neighbors(0), &[] as &[u32]);
    assert_eq!(csr.neighbors(1), big.as_slice());
    assert_eq!(csr.neighbors(2), &[0]);
}

#[test]
fn steady_state_search_does_not_allocate_scratch() {
    // After one warm-up query, the pooled scratch must be reused: the
    // created counter stays flat while checkouts keep climbing.
    let mut base = VectorSet::new(2);
    for i in 0..14 {
        for j in 0..14 {
            base.push(&[i as f32, j as f32]);
        }
    }
    let index = Hnsw::build(
        FullPrecision::new(base),
        HnswParams {
            c: 32,
            r: 8,
            seed: 7,
        },
    );
    let frozen = index.freeze();
    let provider = index.provider();

    let _ = search_layers(provider, &frozen, &[3.0, 3.0], 5, 32); // warm-up
    let before = graphs::scratch_stats();
    let queries = 200;
    for q in 0..queries {
        let hits = search_layers(provider, &frozen, &[(q % 14) as f32, 2.5], 5, 32);
        assert!(!hits.is_empty());
    }
    let after = graphs::scratch_stats();
    assert_eq!(
        after.created, before.created,
        "steady-state searches must not create new scratch"
    );
    assert_eq!(after.checkouts - before.checkouts, queries);
}

#[test]
fn cached_flash_search_is_bit_identical_to_plain() {
    // The hotpath-bench pairing: Flash's batched LUT scoring over prebuilt
    // per-node blocks must reproduce the gathering kernel's (dist, id)
    // results exactly — visited lanes scored redundantly change nothing.
    use flash::{BuildFlash, FlashHnsw, FlashParams};
    let (base, queries) =
        vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 600, 16, 11);
    let mut fp = FlashParams::auto(base.dim());
    fp.seed = 11;
    fp.train_sample = 300;
    let index = FlashHnsw::build_flash(
        base,
        fp,
        HnswParams {
            c: 48,
            r: 8,
            seed: 11,
        },
    );
    let frozen = index.freeze();
    let provider = index.provider();
    let payloads = NodePayloads::build(provider, &frozen);
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let plain = search_layers(provider, &frozen, q, 10, 64);
        let cached = search_layers_cached(provider, &frozen, &payloads, q, 10, 64);
        assert_eq!(plain.len(), cached.len(), "query {qi}");
        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!((a.id, a.dist), (b.id, b.dist), "query {qi}");
        }
    }
}

#[test]
fn frozen_graph_from_flat_matches_flat_view() {
    let adj = vec![vec![1, 2], vec![0], vec![0, 1]];
    let flat = FlatGraph::from_nested(&adj, 2);
    let layered = GraphLayers::from_flat(&flat);
    assert_eq!(layered.len(), flat.len());
    assert_eq!(layered.entry, flat.entry);
    assert_eq!(layered.max_layer, 0);
    for node in 0..flat.len() as u32 {
        assert_eq!(layered.neighbors(0, node), flat.neighbors(node));
    }
}
