//! Property-based tests for the extension systems: pruning-rule algebra,
//! memtable/oracle agreement, Vamana structural invariants, filtered-search
//! predicate safety, and OPQ rotation orthogonality.

use graphs::flat_build::{AlphaRule, MrngRule, PruneRule};
use graphs::providers::FullPrecision;
use graphs::{Hnsw, HnswParams, Vamana, VamanaParams};
use maintenance::MemTable;
use proptest::prelude::*;
use quantizers::OptimizedProductQuantizer;
use vecstore::VectorSet;

proptest! {
    /// Raising α only makes domination *harder*: any candidate pruned with
    /// a larger α is also pruned with a smaller one.
    #[test]
    fn alpha_rule_monotone_in_alpha(
        d_xv in 0.0f32..100.0,
        d_uv in 0.0f32..100.0,
        lo in 1.0f32..2.0,
        bump in 0.0f32..2.0,
    ) {
        let hi = lo + bump;
        let rule_lo = AlphaRule::new(lo);
        let rule_hi = AlphaRule::new(hi);
        if rule_hi.dominated(d_xv, d_uv) {
            prop_assert!(rule_lo.dominated(d_xv, d_uv),
                "α={hi} pruned but α={lo} kept (d_xv={d_xv}, d_uv={d_uv})");
        }
    }

    /// α = 1 relates to MRNG: the α-rule differs only on the tie boundary
    /// (`<=` vs `<`), so off ties the two agree exactly.
    #[test]
    fn alpha_one_agrees_with_mrng_off_ties(
        d_xv in 0.0f32..100.0,
        d_uv in 0.0f32..100.0,
    ) {
        prop_assume!(d_uv != d_xv);
        let alpha = AlphaRule::new(1.0);
        let mrng = MrngRule;
        prop_assert_eq!(alpha.dominated(d_xv, d_uv), mrng.dominated(d_xv, d_uv));
    }
}

/// Operations driving the memtable model test.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, [f32; 3]),
    Delete(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40, prop::array::uniform3(-5.0f32..5.0)).prop_map(|(id, v)| Op::Insert(id, v)),
        (0u64..40).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The memtable agrees with a naive model under arbitrary operation
    /// sequences: live counts, membership, and top-1 search.
    #[test]
    fn memtable_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut table = MemTable::new(3);
        // Model: (id, vector, alive). The memtable allows duplicate external
        // ids (the LSM layer above guarantees uniqueness), and `delete`
        // tombstones the first live occurrence — mirror that exactly.
        let mut model: Vec<(u64, [f32; 3], bool)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Insert(id, v) => {
                    table.insert(id, &v);
                    model.push((id, v, true));
                }
                Op::Delete(id) => {
                    let did = table.delete(id);
                    let slot = model.iter_mut().find(|(eid, _, alive)| *eid == id && *alive);
                    match slot {
                        Some(entry) => {
                            prop_assert!(did, "model live but table refused delete of {id}");
                            entry.2 = false;
                        }
                        None => prop_assert!(!did, "table deleted {id} the model never had"),
                    }
                }
            }
        }
        let live_model: Vec<&(u64, [f32; 3], bool)> =
            model.iter().filter(|(_, _, alive)| *alive).collect();
        prop_assert_eq!(table.live(), live_model.len());

        // Top-1 search agrees with the model oracle (modulo exact ties).
        if !live_model.is_empty() {
            let q = [0.25f32, -0.5, 1.0];
            let best_model = live_model
                .iter()
                .map(|(id, v, _)| (simdops::l2_sq(&q, v), *id))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .unwrap();
            let got = table.search(&q, 1)[0];
            prop_assert!((got.dist - best_model.0).abs() < 1e-6,
                "top-1 distance {} vs model {}", got.dist, best_model.0);
        } else {
            prop_assert!(table.search(&[0.0; 3], 1).is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Vamana over arbitrary small point clouds: reachable from the entry,
    /// no self-edges, bounded degrees away from the repaired entry.
    #[test]
    fn vamana_structural_invariants(
        points in prop::collection::vec(prop::array::uniform2(-10.0f32..10.0), 20..120),
        alpha in 1.0f32..1.6,
    ) {
        let mut base = VectorSet::new(2);
        for p in &points {
            base.push(p);
        }
        let n = base.len();
        let index = Vamana::build(
            FullPrecision::new(base),
            VamanaParams { r: 6, c: 24, alpha, seed: 5 },
        );
        let g = index.graph();
        prop_assert_eq!(g.reachable_from_entry(), n, "not fully reachable");
        for i in 0..g.len() {
            let nbrs = g.neighbors(i as u32);
            prop_assert!(!nbrs.contains(&(i as u32)), "self edge at {i}");
            if i != g.entry as usize {
                prop_assert!(nbrs.len() <= 6, "degree {} at non-entry {i}", nbrs.len());
            }
        }
    }

    /// Filtered search never leaks a vertex the predicate rejects, for
    /// arbitrary random label assignments.
    #[test]
    fn filtered_search_never_violates_predicate(
        labels_mod in 2u32..6,
        seed in 0u64..1000,
    ) {
        let (base, queries) = vecstore::generate(
            &vecstore::DatasetSpec::new(8, 4, 0.95, 0.4, seed),
            300,
            3,
            seed,
        );
        let labels: Vec<u32> = (0..base.len() as u32).map(|i| i % labels_mod).collect();
        let index = Hnsw::build(
            FullPrecision::new(base),
            HnswParams { c: 32, r: 8, seed },
        );
        let labels_ref = &labels;
        let accept = move |id: u32| labels_ref[id as usize] == 0;
        for qi in 0..queries.len() {
            for hit in index.search_filtered(queries.get(qi), 4, 48, &accept) {
                prop_assert_eq!(labels[hit.id as usize], 0u32);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// OPQ's learned rotation stays orthogonal (QᵀQ = I) and therefore
    /// distance-preserving for arbitrary training data.
    #[test]
    fn opq_rotation_always_orthogonal(
        seed in 0u64..1000,
        scale in 0.1f32..5.0,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let dim = 4;
        let mut data = VectorSet::new(dim);
        for _ in 0..80 {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-scale..scale)).collect();
            data.push(&v);
        }
        let opq = OptimizedProductQuantizer::train(&data, 2, 4, 2, 4, seed);
        let q = opq.rotation();
        let qtq = q.transpose().matmul(q);
        let eye = linalg::Matrix::identity(dim);
        prop_assert!(qtq.max_abs_diff(&eye) < 1e-3,
            "QᵀQ deviates by {}", qtq.max_abs_diff(&eye));
    }
}
