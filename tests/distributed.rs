//! Distributed serving: cross-process routing over a wire transport.
//!
//! What this suite proves:
//!
//! * **Exact parity** — a coordinator whose shards live behind the wire
//!   (loopback *and* real socket transports) returns bit-identical hits
//!   to the in-process `ShardedIndex` and to the brute-force `FlatIndex`,
//!   across ≥3 graph × coding combinations (exhaustive-`ef` +
//!   full-rerank settings, so approximate indexes become exact);
//! * **Node death mid-run** — with replica nodes behind a
//!   `ReplicaGroup`, killing a node's process surface (its socket
//!   server) mid-workload changes *nothing* about the results, and the
//!   failover counters record the mark-down/retry path;
//! * **Codec robustness** — every frame kind round-trips canonically
//!   (property-tested over arbitrary bit patterns, error frames
//!   included), truncated frames are rejected at every cut point, and
//!   corrupted payloads fail the checksum.

use hnsw_flash::prelude::*;
use proptest::prelude::*;
use serving::distributed::wire::{read_message, write_message, ErrorCode, Message, WireFault};
use serving::distributed::{
    EventConfig, EventServer, LoopbackTransport, NodeAddr, NodeHandler, NodeServer, RemoteIndex,
    SocketTransport, Transport,
};
use serving::FaultKind;
use std::sync::Arc;
use std::time::Duration;

/// Exactness setup, identical to `tests/replication.rs`: `EF ≥ N` makes
/// every connected graph search exhaustive and `K · RERANK ≥ N` reranks
/// every candidate with full-precision distances, so every index in play
/// returns the identical global `(dist, id)` top-k.
const N: usize = 180;
const DIM: usize = 12;
const K: usize = 8;
const EF: usize = 256;
const RERANK: usize = 32;

const COMBOS: [(GraphKind, Coding); 3] = [
    (GraphKind::Hnsw, Coding::Flash),
    (GraphKind::Nsg, Coding::Full),
    (GraphKind::Vamana, Coding::Sq),
];

fn dataset(n: usize) -> (VectorSet, VectorSet) {
    generate(&DatasetSpec::new(DIM, 10, 0.95, 0.4, 4), n, 12, 77)
}

fn builder_for(graph: GraphKind, coding: Coding) -> IndexBuilder {
    IndexBuilder::new(graph, coding)
        .c(32)
        .r(8)
        .seed(7)
        .train_sample(100)
        .pq_m(4)
}

fn exhaustive(query: &[f32]) -> SearchRequest {
    SearchRequest::new(query.to_vec(), K).ef(EF).rerank(RERANK)
}

/// Builds the shard sub-indexes exactly as `ShardedIndex::build` does —
/// one codec trained on the full corpus, shared by every shard — but
/// returns the parts so they can be placed behind transports.
fn build_parts(
    base: &VectorSet,
    builder: &IndexBuilder,
    shards: usize,
) -> Vec<(Box<dyn AnnIndex>, Vec<u64>)> {
    let codec = builder.train_codec(base);
    ShardedIndex::partition(base, shards, ShardPolicy::RoundRobin)
        .into_iter()
        .map(|(set, ids)| (builder.build_with_codec(set, &codec), ids))
        .collect()
}

fn tcp_server(index: Arc<dyn AnnIndex>) -> NodeServer {
    NodeServer::bind(
        &NodeAddr::Tcp("127.0.0.1:0".into()),
        NodeHandler::new(index),
        2,
    )
    .expect("bind an ephemeral TCP port")
}

fn remote_over_socket(server: &NodeServer) -> RemoteIndex {
    let transport = SocketTransport::connect(server.addr().clone()).expect("dial the node");
    RemoteIndex::connect(Arc::new(transport)).expect("info handshake")
}

#[test]
fn loopback_distributed_matches_sharded_and_flat() {
    let (base, queries) = dataset(N);
    let n = base.len();
    let flat = FlatIndex::new(base.clone());
    for (graph, coding) in COMBOS {
        let builder = builder_for(graph, coding);
        let sharded = ShardedIndex::build(base.clone(), &builder, 3, ShardPolicy::RoundRobin, 2);
        let remote_parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = build_parts(&base, &builder, 3)
            .into_iter()
            .map(|(index, ids)| {
                let transport =
                    Arc::new(LoopbackTransport::new(NodeHandler::new(Arc::from(index))));
                let remote = RemoteIndex::connect(transport).expect("loopback handshake");
                (Box::new(remote) as Box<dyn AnnIndex>, ids)
            })
            .collect();
        let distributed = ShardedIndex::from_parts(
            remote_parts,
            ShardPolicy::RoundRobin,
            Arc::new(WorkerPool::new(2)),
        );
        assert_eq!(distributed.len(), n);
        for qi in 0..queries.len() {
            let req = exhaustive(queries.get(qi));
            let want = flat.search(&req).hits;
            assert_eq!(
                sharded.search(&req).hits,
                want,
                "{graph:?}x{coding:?} q{qi}: in-process sharded != flat"
            );
            assert_eq!(
                distributed.search(&req).hits,
                want,
                "{graph:?}x{coding:?} q{qi}: loopback-distributed != flat"
            );
        }
    }
}

#[test]
fn socket_distributed_matches_sharded_and_flat() {
    let (base, queries) = dataset(N);
    let flat = FlatIndex::new(base.clone());
    for (graph, coding) in COMBOS {
        let builder = builder_for(graph, coding);
        let sharded = ShardedIndex::build(base.clone(), &builder, 3, ShardPolicy::RoundRobin, 2);
        let mut servers = Vec::new();
        let remote_parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = build_parts(&base, &builder, 3)
            .into_iter()
            .map(|(index, ids)| {
                let server = tcp_server(Arc::from(index));
                let remote = remote_over_socket(&server);
                servers.push(server);
                (Box::new(remote) as Box<dyn AnnIndex>, ids)
            })
            .collect();
        let distributed = ShardedIndex::from_parts(
            remote_parts,
            ShardPolicy::RoundRobin,
            Arc::new(WorkerPool::new(3)),
        );
        for qi in 0..queries.len() {
            let req = exhaustive(queries.get(qi));
            let want = flat.search(&req).hits;
            assert_eq!(
                sharded.search(&req).hits,
                want,
                "{graph:?}x{coding:?} q{qi}"
            );
            assert_eq!(
                distributed.search(&req).hits,
                want,
                "{graph:?}x{coding:?} q{qi}: socket-distributed != flat"
            );
        }
        for mut server in servers {
            let stats = server.stats();
            assert!(stats.frames_received > 0, "the node actually served");
            server.shutdown();
        }
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_serves_identically() {
    let (base, queries) = dataset(N);
    let n = base.len();
    let builder = builder_for(GraphKind::Hnsw, Coding::Sq);
    let index: Arc<dyn AnnIndex> = Arc::from(builder.build(base.clone()));
    let path = std::env::temp_dir().join(format!("hfw-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut server = NodeServer::bind(
        &NodeAddr::Unix(path.clone()),
        NodeHandler::new(Arc::clone(&index)),
        1,
    )
    .expect("bind the unix socket");
    let remote = remote_over_socket(&server);
    assert_eq!(FallibleIndex::len(&remote), n);
    for qi in 0..queries.len() {
        let req = exhaustive(queries.get(qi));
        assert_eq!(
            AnnIndex::search(&remote, &req).hits,
            index.search(&req).hits,
            "q{qi} over unix socket"
        );
    }
    let stats = remote.transport_stats();
    assert_eq!(stats.frames_sent, queries.len() as u64 + 1); // + handshake
    assert_eq!(stats.frames_received, stats.frames_sent);
    assert_eq!(stats.errors, 0);
    server.shutdown();
    assert!(!path.exists(), "shutdown removes the socket file");
}

/// The distributed failover story end to end: every shard is a
/// `ReplicaGroup` of two *remote* nodes; one node is killed mid-run; the
/// results never change and the health model records the transition.
#[test]
fn node_death_mid_run_fails_over_with_identical_results() {
    let (base, queries) = dataset(N);
    let shards = 2;
    let flat = FlatIndex::new(base.clone());
    let builder = builder_for(GraphKind::Hnsw, Coding::Sq);

    // Two identical deterministic builds per shard = two replica nodes.
    let parts_a = build_parts(&base, &builder, shards);
    let parts_b = build_parts(&base, &builder, shards);
    let mut servers: Vec<Vec<NodeServer>> = Vec::new();
    let mut groups: Vec<Arc<ReplicaGroup>> = Vec::new();
    let fleet_parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = parts_a
        .into_iter()
        .zip(parts_b)
        .map(|((index_a, ids), (index_b, ids_b))| {
            assert_eq!(ids, ids_b);
            let shard_servers = vec![
                tcp_server(Arc::from(index_a)),
                tcp_server(Arc::from(index_b)),
            ];
            let members: Vec<Box<dyn FallibleIndex>> = shard_servers
                .iter()
                .map(|server| Box::new(remote_over_socket(server)) as Box<dyn FallibleIndex>)
                .collect();
            let group = Arc::new(ReplicaGroup::from_replicas(
                members,
                RoutingPolicy::Primary,
                HealthConfig {
                    error_threshold: 1,
                    probe_after: 1_000, // no probes within this test
                },
            ));
            servers.push(shard_servers);
            groups.push(Arc::clone(&group));
            (Box::new(group) as Box<dyn AnnIndex>, ids)
        })
        .collect();
    let fleet = ShardedIndex::from_parts(
        fleet_parts,
        ShardPolicy::RoundRobin,
        Arc::new(WorkerPool::new(2)),
    );

    let run = |label: &str| {
        for qi in 0..queries.len() {
            let req = exhaustive(queries.get(qi));
            assert_eq!(
                fleet.search(&req).hits,
                flat.search(&req).hits,
                "{label}: q{qi} diverged from brute force"
            );
        }
    };
    run("healthy fleet");
    let before = groups[0].generation();

    // Kill shard 0's primary node: connections sever, the next call on
    // its RemoteIndex fails like a crashed process.
    servers[0][0].shutdown();
    run("shard 0 primary dead");

    let g0 = groups[0].failover_stats();
    assert_eq!(g0.markdowns, 1, "the dead node was marked down once");
    assert!(g0.retries >= 1, "its request was retried on the sibling");
    assert!(g0.errors >= 1);
    assert!(groups[0].is_marked_down(0));
    assert!(
        groups[0].generation() > before,
        "mark-down bumps the cache-invalidation generation"
    );
    // The healthy shard never failed over.
    assert_eq!(groups[1].failover_stats().markdowns, 0);

    for shard_servers in &mut servers {
        for server in shard_servers {
            server.shutdown();
        }
    }
}

/// A live node answers [`Message::StatsRequest`] with a transport ledger
/// that mirrors the coordinator's own: the node snapshots *after*
/// counting the scrape request and *before* counting its reply, so both
/// directions reconcile exactly.
#[test]
fn stats_scrape_matches_the_coordinator_frame_ledger() {
    let (base, queries) = dataset(64);
    let n = base.len() as u64;
    let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base));
    let mut server = tcp_server(index);
    let transport =
        Arc::new(SocketTransport::connect(server.addr().clone()).expect("dial the node"));
    let remote =
        RemoteIndex::connect(Arc::clone(&transport) as Arc<dyn Transport>).expect("info handshake");
    for qi in 0..10 {
        let req = SearchRequest::new(queries.get(qi).to_vec(), K);
        remote.try_search(&req).expect("healthy search");
    }
    let coordinator = transport.stats();
    assert_eq!(coordinator.frames_sent, 11, "1 handshake + 10 searches");
    assert_eq!(coordinator.frames_received, 11);

    let reply = transport
        .exchange(&Message::StatsRequest)
        .expect("stats scrape");
    let Message::StatsResponse(stats) = reply else {
        panic!(
            "expected a StatsResponse, got a {} frame",
            reply.kind_name()
        );
    };
    assert_eq!(
        stats.transport.frames_received,
        coordinator.frames_sent + 1,
        "node has counted every coordinator frame, the scrape included"
    );
    assert_eq!(
        stats.transport.frames_sent, coordinator.frames_received,
        "node has answered every frame except the in-flight scrape"
    );
    assert_eq!(stats.transport.errors, 0);
    assert_eq!(stats.info.requests, 10, "only searches count as requests");
    assert_eq!(stats.info.len, n);
    assert_eq!(stats.info.dim, DIM as u32);
    server.shutdown();
}

/// Kill/restart a node mid-run and check the coordinator transport's
/// books against the scripted fault sequence: 5 clean exchanges, 2
/// failed calls while the node is down (one severed mid-call, one failed
/// dial — neither is a reconnect), then 3 clean exchanges after a
/// restart, whose first call re-dials (exactly one reconnect).
///
/// Unix sockets keep every step deterministic: a write on a severed
/// stream fails immediately (no TCP buffering), and a dial on the
/// removed socket path fails at connect.
#[cfg(unix)]
#[test]
fn reconnect_accounting_matches_the_scripted_fault_sequence() {
    let (base, queries) = dataset(64);
    let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base));
    let path = std::env::temp_dir().join(format!("hfw-reconnect-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let addr = NodeAddr::Unix(path.clone());
    let mut server =
        NodeServer::bind(&addr, NodeHandler::new(Arc::clone(&index)), 1).expect("bind the node");
    let transport = SocketTransport::connect(addr.clone()).expect("dial the node");
    let search = |qi: usize| Message::Search(SearchRequest::new(queries.get(qi).to_vec(), K));

    for qi in 0..5 {
        assert!(
            matches!(transport.exchange(&search(qi)), Ok(Message::SearchOk(_))),
            "healthy exchange {qi}"
        );
    }
    let s = transport.stats();
    assert_eq!(
        (s.frames_sent, s.frames_received, s.errors, s.reconnects),
        (5, 5, 0, 0)
    );

    server.shutdown();
    assert!(
        transport.exchange(&search(5)).is_err(),
        "severed connection must fail the call"
    );
    assert!(
        transport.exchange(&search(6)).is_err(),
        "dialing the gone socket must fail"
    );
    let s = transport.stats();
    assert_eq!(s.errors, 2, "one error per failed call, exactly");
    assert_eq!(s.reconnects, 0, "failed dials are not reconnects");
    assert_eq!(s.frames_sent, 5, "nothing landed while the node was down");
    assert_eq!(s.frames_received, 5);

    let mut revived = NodeServer::bind(&addr, NodeHandler::new(index), 1).expect("rebind the node");
    for qi in 5..8 {
        assert!(
            matches!(transport.exchange(&search(qi)), Ok(Message::SearchOk(_))),
            "post-restart exchange {qi}"
        );
    }
    let s = transport.stats();
    assert_eq!(s.reconnects, 1, "exactly one re-dial after the restart");
    assert_eq!(s.errors, 2, "no new errors after the revival");
    assert_eq!((s.frames_sent, s.frames_received), (8, 8));
    assert_eq!(s.timeouts, 0);
    revived.shutdown();
}

#[test]
fn filtered_requests_fail_remote_instead_of_serving_wrong_results() {
    let (base, _) = dataset(64);
    let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base.clone()));
    let remote = RemoteIndex::connect(Arc::new(LoopbackTransport::new(NodeHandler::new(index))))
        .expect("handshake");
    let req = SearchRequest::new(base.get(0).to_vec(), 3).filter(|id| id % 2 == 0);
    let err = remote.try_search(&req).unwrap_err();
    assert_eq!(err.kind, FaultKind::Malformed);
}

/// A scripted node fault crosses the wire as a structured error frame and
/// drives the client-side health model exactly like a local fault.
#[test]
fn node_side_faults_reach_the_client_health_model() {
    let (base, queries) = dataset(80);
    let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base.clone()));
    let faulty = NodeHandler::with_faults(Arc::clone(&index), FaultPlan::new().fail_on(1));
    let remote = RemoteIndex::connect(Arc::new(LoopbackTransport::new(faulty))).expect("handshake");
    let req = SearchRequest::new(queries.get(0), 3);
    assert!(remote.try_search(&req).is_ok()); // node call 0
    let err = remote.try_search(&req).unwrap_err();
    assert_eq!(err.kind, FaultKind::Transient, "kind survives the wire");
    assert!(remote.try_search(&req).is_ok()); // node call 2
}

/// Regression: `shutdown()` must stay bounded even when its wake-up dial
/// cannot reach the accept loop — here the unix socket path is removed
/// out from under the server, so the dial fails at connect. The old code
/// joined the accept thread unconditionally and hung forever.
#[cfg(unix)]
#[test]
fn shutdown_stays_bounded_when_the_wake_dial_fails() {
    let (base, _) = dataset(48);
    let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base));
    let path = std::env::temp_dir().join(format!("hfw-wake-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut server = NodeServer::bind(&NodeAddr::Unix(path.clone()), NodeHandler::new(index), 1)
        .expect("bind the unix socket");
    // Sever the dial path: shutdown's wake-up connection must now fail.
    std::fs::remove_file(&path).expect("remove the live socket path");

    let (tx, rx) = std::sync::mpsc::channel();
    let watchdog = std::thread::spawn(move || {
        server.shutdown();
        tx.send(()).ok();
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown must detach the unwakeable accept thread, not join it");
    watchdog.join().unwrap();
}

/// Regression: the best-effort `BadRequest` reply to an undecodable frame
/// is a frame on the wire like any other — the node must count it as
/// sent, or a stats scrape stops reconciling with what clients observed.
#[test]
fn malformed_frame_reply_keeps_the_stats_ledger_reconciled() {
    let (base, _) = dataset(48);
    let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base));
    let mut server = tcp_server(index);
    let NodeAddr::Tcp(host) = server.addr().clone() else {
        panic!("tcp_server binds TCP");
    };

    // A raw client writes garbage (wrong magic): the node answers one
    // structured BadRequest frame and hangs up.
    let mut raw = std::net::TcpStream::connect(host.as_str()).expect("dial the node");
    std::io::Write::write_all(&mut raw, &[0xDEu8; 32]).expect("write the garbage frame");
    let (reply, _, reply_bytes) = read_message(&mut raw)
        .expect("the error reply must decode")
        .expect("the node answers before hanging up");
    let Message::Error(fault) = reply else {
        panic!("expected an error frame, got a {} frame", reply.kind_name());
    };
    assert_eq!(fault.code, ErrorCode::BadRequest);
    assert!(
        matches!(read_message(&mut raw), Ok(None) | Err(_)),
        "framing state is unrecoverable: the node hangs up after replying"
    );

    // A second connection scrapes the ledger. The node snapshots after
    // counting the scrape request and before counting its reply, so:
    // received = the scrape alone (garbage never counts as received),
    // sent = the BadRequest reply alone, errors = the undecodable frame.
    let transport = SocketTransport::connect(server.addr().clone()).expect("dial the node");
    let Message::StatsResponse(stats) = transport
        .exchange(&Message::StatsRequest)
        .expect("stats scrape")
    else {
        panic!("expected a StatsResponse");
    };
    assert_eq!(stats.transport.errors, 1, "one undecodable frame");
    assert_eq!(
        stats.transport.frames_received, 1,
        "only the scrape decoded; garbage is not a received frame"
    );
    assert_eq!(
        stats.transport.frames_sent, 1,
        "the BadRequest reply was counted as sent"
    );
    assert_eq!(
        stats.transport.bytes_sent, reply_bytes as u64,
        "counted bytes match the frame the raw client actually read"
    );
    server.shutdown();
}

/// Regression: `with_timeout` on an *established* connection used to
/// ignore a failed `set_deadline`, leaving the old deadline silently in
/// force. `Duration::ZERO` is unsettable by contract, so every exchange
/// after it must fail (the poisoned connection is dropped and the
/// re-dial refuses to come up without the deadline) — and a settable
/// deadline afterwards must restore service.
#[test]
fn unsettable_deadline_on_a_live_connection_never_goes_silent() {
    let (base, queries) = dataset(48);
    let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base));
    let mut server = tcp_server(index);

    // Eagerly dialed: the connection exists before the deadline change.
    let transport = SocketTransport::connect(server.addr().clone()).expect("dial the node");
    let probe = Message::Search(SearchRequest::new(queries.get(0).to_vec(), K));
    assert!(
        matches!(transport.exchange(&probe), Ok(Message::SearchOk(_))),
        "the connection serves before the deadline change"
    );

    let transport = transport.with_timeout(Duration::ZERO);
    assert!(
        transport.exchange(&probe).is_err(),
        "an unsettable deadline must surface as an error, never be ignored"
    );

    let transport = transport.with_timeout(Duration::from_secs(5));
    assert!(
        matches!(transport.exchange(&probe), Ok(Message::SearchOk(_))),
        "a settable deadline restores service on a fresh dial"
    );
    server.shutdown();
}

/// The event-driven front-end is a drop-in for the blocking server: the
/// same exhaustive queries over the same index return bit-identical hits
/// through both, and through the brute-force baseline.
#[test]
fn event_server_matches_blocking_server_and_flat() {
    let (base, queries) = dataset(N);
    let flat = FlatIndex::new(base.clone());
    let builder = builder_for(GraphKind::Hnsw, Coding::Sq);
    let index: Arc<dyn AnnIndex> = Arc::from(builder.build(base));

    let mut blocking = tcp_server(Arc::clone(&index));
    let mut event = EventServer::bind(
        &NodeAddr::Tcp("127.0.0.1:0".into()),
        NodeHandler::new(Arc::clone(&index)),
        EventConfig::default(),
    )
    .expect("bind the event server");

    let over_blocking = remote_over_socket(&blocking);
    let event_transport =
        SocketTransport::connect(event.addr().clone()).expect("dial the event server");
    let over_event = RemoteIndex::connect(Arc::new(event_transport)).expect("info handshake");

    for qi in 0..queries.len() {
        let req = exhaustive(queries.get(qi));
        let want = flat.search(&req).hits;
        assert_eq!(
            AnnIndex::search(&over_blocking, &req).hits,
            want,
            "q{qi}: blocking != flat"
        );
        assert_eq!(
            AnnIndex::search(&over_event, &req).hits,
            want,
            "q{qi}: event-driven != flat"
        );
    }
    let admission = event.admission_stats();
    assert_eq!(
        admission.shed, 0,
        "healthy load must never shed (queue deadline far above service time)"
    );
    assert!(admission.admitted >= queries.len() as u64);
    event.shutdown();
    blocking.shutdown();
}

/// Pipelining correctness: N frames written back-to-back on one
/// connection (none of their replies read until all are sent) come back
/// in request order, bit-identical to N strict sequential exchanges.
#[test]
fn pipelined_frames_match_sequential_exchanges() {
    let (base, queries) = dataset(N);
    let builder = builder_for(GraphKind::Hnsw, Coding::Sq);
    let index: Arc<dyn AnnIndex> = Arc::from(builder.build(base));
    let mut event = EventServer::bind(
        &NodeAddr::Tcp("127.0.0.1:0".into()),
        NodeHandler::new(index),
        EventConfig::default(),
    )
    .expect("bind the event server");
    let NodeAddr::Tcp(host) = event.addr().clone() else {
        panic!("event server binds TCP");
    };

    // Baseline: strict request/response, one frame in flight.
    let transport = SocketTransport::connect(event.addr().clone()).expect("dial");
    let sequential: Vec<Message> = (0..queries.len())
        .map(|qi| {
            transport
                .exchange(&Message::Search(exhaustive(queries.get(qi))))
                .expect("sequential exchange")
        })
        .collect();

    // Pipelined: every frame in flight at once, each with a distinct
    // trace id so the reply order is checkable end to end.
    let mut stream = std::net::TcpStream::connect(host.as_str()).expect("dial raw");
    stream.set_nodelay(true).ok();
    for qi in 0..queries.len() {
        write_message(
            &mut stream,
            &Message::Search(exhaustive(queries.get(qi))),
            qi as u64 + 1,
        )
        .expect("pipelined send");
    }
    for (qi, want) in sequential.iter().enumerate() {
        let (got, trace_id, _) = read_message(&mut stream)
            .expect("pipelined reply decodes")
            .expect("server answers every pipelined frame");
        assert_eq!(
            trace_id,
            qi as u64 + 1,
            "replies come back in request order"
        );
        let (Message::SearchOk(got), Message::SearchOk(want)) = (&got, want) else {
            panic!("q{qi}: expected SearchOk through both paths");
        };
        assert_eq!(got.hits, want.hits, "q{qi}: pipelined != sequential");
    }
    event.shutdown();
}

fn arbitrary_request(
    bits: &[u32],
    k: usize,
    ef: usize,
    rerank: usize,
    label: Option<u32>,
    vbase: Option<usize>,
) -> SearchRequest {
    let query: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
    let mut req = SearchRequest::new(query, k).ef(ef).rerank(rerank);
    req.label = label;
    req.vbase_window = vbase;
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any request frame — arbitrary f32 bit patterns (NaNs and signed
    /// zeros included) and any option mix — has one canonical encoding
    /// that decodes and re-encodes to the identical bytes, and every
    /// strict prefix of it is rejected as truncated.
    #[test]
    fn request_frames_roundtrip_and_reject_truncation(
        bits in proptest::collection::vec(any::<u32>(), 0..12),
        k in 1usize..50,
        ef in 1usize..300,
        rerank in 0usize..8,
        with_label in any::<bool>(),
        label in any::<u32>(),
        with_vbase in any::<bool>(),
        vbase in 1usize..64,
        cut_seed in any::<u64>(),
    ) {
        let req = arbitrary_request(
            &bits, k, ef, rerank,
            with_label.then_some(label),
            with_vbase.then_some(vbase),
        );
        let frame = Message::Search(req).encode().unwrap();
        let (decoded, consumed) = Message::decode(&frame).unwrap();
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded.encode().unwrap(), frame.clone());
        // Truncation at an arbitrary point, plus the two edge cuts.
        for cut in [0, frame.len() - 1, (cut_seed as usize) % frame.len()] {
            prop_assert!(Message::decode(&frame[..cut]).is_err(), "cut at {}", cut);
        }
    }

    /// Response and error frames round-trip too, and flipping any single
    /// payload byte trips the checksum.
    #[test]
    fn response_and_error_frames_roundtrip_and_checksum(
        ids in proptest::collection::vec(any::<u64>(), 0..10),
        dist_bits in proptest::collection::vec(any::<u32>(), 0..10),
        code in 1u8..7,
        msg_len in 0usize..24,
        flip in any::<u64>(),
    ) {
        let hits: Vec<Hit> = ids
            .iter()
            .zip(&dist_bits)
            .map(|(&id, &b)| Hit { id, dist: f32::from_bits(b) })
            .collect();
        let response = Message::SearchOk(SearchResponse::from_hits(hits));
        let error = Message::Error(WireFault {
            code: match code {
                1 => ErrorCode::BadRequest,
                2 => ErrorCode::Unsupported,
                3 => ErrorCode::FaultTransient,
                4 => ErrorCode::FaultDead,
                6 => ErrorCode::Overloaded,
                _ => ErrorCode::Internal,
            },
            message: "x".repeat(msg_len),
        });
        for message in [response, error] {
            let frame = message.encode().unwrap();
            let (decoded, consumed) = Message::decode(&frame).unwrap();
            prop_assert_eq!(consumed, frame.len());
            prop_assert_eq!(decoded.encode().unwrap(), frame.clone());
            // Corrupt one payload byte (if there is a payload): the
            // checksum must catch it.
            let payload_len = frame.len()
                - serving::distributed::wire::HEADER_LEN
                - serving::distributed::wire::TRAILER_LEN;
            if payload_len > 0 {
                let mut corrupt = frame.clone();
                let at = serving::distributed::wire::HEADER_LEN
                    + (flip as usize) % payload_len;
                corrupt[at] ^= 0x40;
                prop_assert!(Message::decode(&corrupt).is_err(), "flip at {}", at);
            }
        }
    }
}
