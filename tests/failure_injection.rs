//! Failure injection: persistence and dataset I/O must reject corrupt,
//! truncated, or mismatched inputs with errors — never panic, never return
//! silently wrong data. These are the failure modes an overnight-rebuild
//! pipeline actually hits (partial writes from a crashed rebuild, version
//! skew between the writer and the reader).

use graphs::providers::FullPrecision;
use graphs::{FlatGraph, GraphLayers, Hnsw, HnswParams};
use std::fs;
use std::path::PathBuf;
use vecstore::io::{read_fvecs, read_ivecs, write_fvecs, write_ivecs};
use vecstore::VectorSet;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hnsw_flash_failure_tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn grid(side: usize) -> VectorSet {
    let mut s = VectorSet::new(2);
    for i in 0..side {
        for j in 0..side {
            s.push(&[i as f32, j as f32]);
        }
    }
    s
}

fn sample_layers() -> GraphLayers {
    let index = Hnsw::build(
        FullPrecision::new(grid(8)),
        HnswParams {
            c: 32,
            r: 8,
            seed: 1,
        },
    );
    index.freeze()
}

#[test]
fn graph_roundtrip_is_exact() {
    let g = sample_layers();
    let path = tmp("roundtrip.bin");
    g.save(&path).unwrap();
    let loaded = GraphLayers::load(&path).unwrap();
    assert_eq!(loaded.entry, g.entry);
    assert_eq!(loaded.max_layer, g.max_layer);
    assert_eq!(loaded.layers, g.layers);
}

#[test]
fn truncated_graph_file_is_rejected_at_every_length() {
    let g = sample_layers();
    let path = tmp("truncate_src.bin");
    g.save(&path).unwrap();
    let bytes = fs::read(&path).unwrap();
    // Cut the file at a spread of prefix lengths; every one must error.
    for frac in [0usize, 1, 4, 9, 16, 64] {
        let cut = (bytes.len() * frac / 100).min(bytes.len().saturating_sub(1));
        let path = tmp("truncated.bin");
        fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            GraphLayers::load(&path).is_err(),
            "truncation to {cut}/{} bytes must fail",
            bytes.len()
        );
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let g = sample_layers();
    let path = tmp("magic.bin");
    g.save(&path).unwrap();
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();
    let err = GraphLayers::load(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn flat_and_layered_formats_are_not_interchangeable() {
    let g = sample_layers();
    let path = tmp("kind_confusion.bin");
    g.save(&path).unwrap();
    assert!(
        FlatGraph::load(&path).is_err(),
        "a multi-layer file must not load as a flat graph"
    );

    let flat = FlatGraph {
        adj: vec![vec![1], vec![0]],
        entry: 0,
    };
    let path2 = tmp("kind_confusion2.bin");
    flat.save(&path2).unwrap();
    assert!(
        GraphLayers::load(&path2).is_err(),
        "a flat file must not load as a multi-layer graph"
    );
}

#[test]
fn corrupt_edge_target_is_rejected_not_crashing() {
    let flat = FlatGraph {
        adj: vec![vec![1], vec![0]],
        entry: 0,
    };
    let path = tmp("bad_edge.bin");
    flat.save(&path).unwrap();
    let mut bytes = fs::read(&path).unwrap();
    // The last u32 is an edge target; point it far out of range.
    let n = bytes.len();
    bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    let err = FlatGraph::load(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = GraphLayers::load(&tmp("does_not_exist.bin")).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
}

#[test]
fn fvecs_roundtrip_then_truncation_fails() {
    let set = grid(6);
    let path = tmp("vectors.fvecs");
    write_fvecs(&path, &set).unwrap();
    let loaded = read_fvecs(&path).unwrap();
    assert_eq!(loaded.len(), set.len());
    assert_eq!(loaded.dim(), set.dim());
    assert_eq!(loaded.get(17), set.get(17));

    let bytes = fs::read(&path).unwrap();
    let path2 = tmp("vectors_cut.fvecs");
    // Cut mid-record: a dimension header promising data that is not there.
    fs::write(&path2, &bytes[..bytes.len() - 5]).unwrap();
    assert!(
        read_fvecs(&path2).is_err(),
        "mid-record truncation must fail"
    );
}

#[test]
fn fvecs_with_absurd_dimension_header_is_rejected() {
    let path = tmp("absurd_dim.fvecs");
    // Dimension header of 2^30 with no payload.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
    bytes.extend_from_slice(&1.0f32.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    assert!(read_fvecs(&path).is_err());
}

#[test]
fn ivecs_truncation_fails() {
    let path = tmp("truth.ivecs");
    write_ivecs(&path, &[vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
    let ok = read_ivecs(&path).unwrap();
    assert_eq!(ok, vec![vec![1, 2, 3], vec![4, 5, 6]]);

    let bytes = fs::read(&path).unwrap();
    let path2 = tmp("truth_cut.ivecs");
    fs::write(&path2, &bytes[..bytes.len() - 2]).unwrap();
    assert!(read_ivecs(&path2).is_err());
}

#[test]
fn empty_file_is_rejected_everywhere() {
    let path = tmp("empty.bin");
    fs::write(&path, b"").unwrap();
    assert!(GraphLayers::load(&path).is_err());
    assert!(FlatGraph::load(&path).is_err());
    // An empty fvecs file is a legal empty dataset per the de-facto format —
    // but must come back as 0 vectors rather than erroring or panicking.
    let loaded = read_fvecs(&path);
    match loaded {
        Ok(set) => assert_eq!(set.len(), 0),
        Err(_) => {} // also acceptable; never a panic
    }
}

#[test]
fn saved_graph_survives_load_and_search_pipeline() {
    // End-to-end: build, persist, reload, verify the reloaded topology
    // searches identically through the flat search path.
    let base = grid(10);
    let index = Hnsw::build(
        FullPrecision::new(base.clone()),
        HnswParams {
            c: 48,
            r: 8,
            seed: 3,
        },
    );
    let frozen = index.freeze();
    let path = tmp("pipeline.bin");
    frozen.save(&path).unwrap();
    let reloaded = GraphLayers::load(&path).unwrap();

    // Same adjacency ⇒ same greedy routes. Spot-check base-layer equality
    // plus entry metadata rather than re-running a full search stack.
    assert_eq!(reloaded.base_edges(), frozen.base_edges());
    assert_eq!(reloaded.entry, frozen.entry);
    assert_eq!(reloaded.adjacency_bytes(), frozen.adjacency_bytes());
}
