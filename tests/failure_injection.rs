//! Failure injection, at two layers.
//!
//! **Storage** (the seed's original scope): persistence and dataset I/O
//! must reject corrupt, truncated, or mismatched inputs with errors —
//! never panic, never return silently wrong data. These are the failure
//! modes an overnight-rebuild pipeline actually hits (partial writes from
//! a crashed rebuild, version skew between the writer and the reader).
//!
//! **Serving** (the same discipline promoted onto `serving::fault`):
//! replica failures are injected through deterministic [`FaultPlan`]
//! scripts instead of ad-hoc wrappers, and the property test at the
//! bottom drives arbitrary generated plans through a replicated fleet —
//! as long as one replica per shard stays healthy, search must never
//! error and must equal the healthy run bit for bit.

use graphs::providers::FullPrecision;
use graphs::{FlatGraph, GraphLayers, Hnsw, HnswParams};
use hnsw_flash::prelude::*;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use vecstore::io::{read_fvecs, read_ivecs, write_fvecs, write_ivecs};
use vecstore::VectorSet;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hnsw_flash_failure_tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn grid(side: usize) -> VectorSet {
    let mut s = VectorSet::new(2);
    for i in 0..side {
        for j in 0..side {
            s.push(&[i as f32, j as f32]);
        }
    }
    s
}

fn sample_layers() -> GraphLayers {
    let index = Hnsw::build(
        FullPrecision::new(grid(8)),
        HnswParams {
            c: 32,
            r: 8,
            seed: 1,
        },
    );
    index.freeze()
}

#[test]
fn graph_roundtrip_is_exact() {
    let g = sample_layers();
    let path = tmp("roundtrip.bin");
    g.save(&path).unwrap();
    let loaded = GraphLayers::load(&path).unwrap();
    assert_eq!(loaded.entry, g.entry);
    assert_eq!(loaded.max_layer, g.max_layer);
    assert_eq!(loaded, g);
}

#[test]
fn truncated_graph_file_is_rejected_at_every_length() {
    let g = sample_layers();
    let path = tmp("truncate_src.bin");
    g.save(&path).unwrap();
    let bytes = fs::read(&path).unwrap();
    // Cut the file at a spread of prefix lengths; every one must error.
    for frac in [0usize, 1, 4, 9, 16, 64] {
        let cut = (bytes.len() * frac / 100).min(bytes.len().saturating_sub(1));
        let path = tmp("truncated.bin");
        fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            GraphLayers::load(&path).is_err(),
            "truncation to {cut}/{} bytes must fail",
            bytes.len()
        );
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let g = sample_layers();
    let path = tmp("magic.bin");
    g.save(&path).unwrap();
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();
    let err = GraphLayers::load(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn flat_and_layered_formats_are_not_interchangeable() {
    let g = sample_layers();
    let path = tmp("kind_confusion.bin");
    g.save(&path).unwrap();
    assert!(
        FlatGraph::load(&path).is_err(),
        "a multi-layer file must not load as a flat graph"
    );

    let flat = FlatGraph::from_nested(&[vec![1], vec![0]], 0);
    let path2 = tmp("kind_confusion2.bin");
    flat.save(&path2).unwrap();
    assert!(
        GraphLayers::load(&path2).is_err(),
        "a flat file must not load as a multi-layer graph"
    );
}

#[test]
fn corrupt_edge_target_is_rejected_not_crashing() {
    let flat = FlatGraph::from_nested(&[vec![1], vec![0]], 0);
    let path = tmp("bad_edge.bin");
    flat.save(&path).unwrap();
    let mut bytes = fs::read(&path).unwrap();
    // The last u32 is an edge target; point it far out of range.
    let n = bytes.len();
    bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    let err = FlatGraph::load(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = GraphLayers::load(&tmp("does_not_exist.bin")).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
}

#[test]
fn fvecs_roundtrip_then_truncation_fails() {
    let set = grid(6);
    let path = tmp("vectors.fvecs");
    write_fvecs(&path, &set).unwrap();
    let loaded = read_fvecs(&path).unwrap();
    assert_eq!(loaded.len(), set.len());
    assert_eq!(loaded.dim(), set.dim());
    assert_eq!(loaded.get(17), set.get(17));

    let bytes = fs::read(&path).unwrap();
    let path2 = tmp("vectors_cut.fvecs");
    // Cut mid-record: a dimension header promising data that is not there.
    fs::write(&path2, &bytes[..bytes.len() - 5]).unwrap();
    assert!(
        read_fvecs(&path2).is_err(),
        "mid-record truncation must fail"
    );
}

#[test]
fn fvecs_with_absurd_dimension_header_is_rejected() {
    let path = tmp("absurd_dim.fvecs");
    // Dimension header of 2^30 with no payload.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
    bytes.extend_from_slice(&1.0f32.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    assert!(read_fvecs(&path).is_err());
}

#[test]
fn ivecs_truncation_fails() {
    let path = tmp("truth.ivecs");
    write_ivecs(&path, &[vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
    let ok = read_ivecs(&path).unwrap();
    assert_eq!(ok, vec![vec![1, 2, 3], vec![4, 5, 6]]);

    let bytes = fs::read(&path).unwrap();
    let path2 = tmp("truth_cut.ivecs");
    fs::write(&path2, &bytes[..bytes.len() - 2]).unwrap();
    assert!(read_ivecs(&path2).is_err());
}

#[test]
fn empty_file_is_rejected_everywhere() {
    let path = tmp("empty.bin");
    fs::write(&path, b"").unwrap();
    assert!(GraphLayers::load(&path).is_err());
    assert!(FlatGraph::load(&path).is_err());
    // An empty fvecs file is a legal empty dataset per the de-facto format —
    // but must come back as 0 vectors rather than erroring or panicking.
    let loaded = read_fvecs(&path);
    match loaded {
        Ok(set) => assert_eq!(set.len(), 0),
        Err(_) => {} // also acceptable; never a panic
    }
}

// ---------------------------------------------------------------------
// Serving-layer failure injection: deterministic `FaultPlan` scripts in
// place of ad-hoc failure wrappers.
// ---------------------------------------------------------------------

fn grid_index(side: usize) -> Arc<dyn AnnIndex> {
    Arc::new(FlatIndex::new(grid(side)))
}

/// The same fault script replays identically on two independent wrappers
/// — the determinism every test in this file leans on.
#[test]
fn fault_plans_replay_deterministically() {
    let plan = FaultPlan::new()
        .fail_calls([2, 5])
        .die_at(8)
        .revive_at(10)
        .delay_on(1, 0);
    let run = |faulty: &FaultyIndex| {
        let req = SearchRequest::new(vec![1.0, 1.0], 3);
        (0..12)
            .map(|_| faulty.try_search(&req).is_ok())
            .collect::<Vec<bool>>()
    };
    let a = FaultyIndex::new(grid_index(6), plan.clone());
    let b = FaultyIndex::new(grid_index(6), plan);
    let (outcomes_a, outcomes_b) = (run(&a), run(&b));
    assert_eq!(outcomes_a, outcomes_b);
    assert_eq!(
        outcomes_a,
        vec![true, true, false, true, true, false, true, true, false, false, true, true]
    );
}

/// An injected failure never leaks wrong data: every successful call
/// through a faulty wrapper returns exactly the inner index's response.
#[test]
fn faulty_wrapper_never_corrupts_results() {
    let inner = grid_index(8);
    let faulty = FaultyIndex::new(Arc::clone(&inner), FaultPlan::new().fail_calls([1, 3, 4]));
    let req = SearchRequest::new(vec![3.0, 4.0], 5);
    let want = inner.search(&req).hits;
    for call in 0..8u64 {
        match faulty.try_search(&req) {
            Ok(response) => assert_eq!(response.hits, want, "call {call}"),
            Err(e) => assert_eq!(e.call, call, "errors carry the tripping call"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For *any* generated fault plan set that leaves replica 0 of every
    /// shard healthy, a replicated fleet never errors (no panic) and
    /// returns exactly the healthy run's hits — whatever mix of transient
    /// errors, latency spikes, deaths, and scripted recoveries the other
    /// replicas suffer, under every routing policy.
    #[test]
    fn any_fault_plan_with_one_healthy_replica_is_invisible(
        side in 5usize..=8,
        shards in 1usize..=3,
        replicas in 2usize..=3,
        k in 1usize..=8,
        // Per-replica fault scripts, decoded below: (mode, a, b).
        scripts in proptest::collection::vec((0u8..4, 0u64..6, 1u64..5), 9),
        probe_after in 1u64..6,
    ) {
        let base = grid(side);
        let flat = FlatIndex::new(base.clone());
        let (indexes, id_maps): (Vec<Arc<dyn AnnIndex>>, Vec<Vec<u64>>) =
            ShardedIndex::partition(&base, shards, ShardPolicy::RoundRobin)
                .into_iter()
                .map(|(set, ids)| (Arc::new(FlatIndex::new(set)) as Arc<dyn AnnIndex>, ids))
                .unzip();
        let plan_for = |s: usize, r: usize| -> Option<FaultPlan> {
            if r == 0 {
                return None; // the invariant: one always-healthy replica
            }
            let (mode, a, b) = scripts[(s * 3 + r) % scripts.len()];
            Some(match mode {
                0 => FaultPlan::new(),
                1 => FaultPlan::new().fail_calls([a, a + b]).delay_on(a + 1, 0),
                2 => FaultPlan::new().die_at(a),
                _ => FaultPlan::new().die_at(a).revive_at(a + b),
            })
        };
        for routing in RoutingPolicy::ALL {
            let mut groups = Vec::new();
            let parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = indexes
                .iter()
                .zip(&id_maps)
                .enumerate()
                .map(|(s, (index, ids))| {
                    let members: Vec<Box<dyn FallibleIndex>> = (0..replicas)
                        .map(|r| match plan_for(s, r) {
                            Some(plan) => Box::new(FaultyIndex::new(Arc::clone(index), plan))
                                as Box<dyn FallibleIndex>,
                            None => Box::new(Arc::clone(index)) as Box<dyn FallibleIndex>,
                        })
                        .collect();
                    let health = HealthConfig { error_threshold: 1, probe_after };
                    let group = Arc::new(ReplicaGroup::from_replicas(members, routing, health));
                    groups.push(Arc::clone(&group));
                    (Box::new(group) as Box<dyn AnnIndex>, ids.clone())
                })
                .collect();
            let fleet =
                ShardedIndex::from_parts(parts, ShardPolicy::RoundRobin, Arc::new(WorkerPool::new(2)));
            // Enough sequential queries to hit deaths, probe windows, and
            // scripted recoveries; every response must equal brute force.
            for qi in (0..base.len()).step_by(7) {
                let req = SearchRequest::new(base.get(qi).to_vec(), k);
                let (want, got) = (flat.search(&req).hits, fleet.search(&req).hits);
                prop_assert_eq!(&got, &want, "routing={} query {}", routing, qi);
            }
            // Sanity: fault scripts actually fired somewhere in most runs
            // (never an assertion — a fully-healthy draw is legitimate).
            let _fired: u64 = groups.iter().map(|g| g.failover_stats().errors).sum();
        }
    }
}

#[test]
fn saved_graph_survives_load_and_search_pipeline() {
    // End-to-end: build, persist, reload, verify the reloaded topology
    // searches identically through the flat search path.
    let base = grid(10);
    let index = Hnsw::build(
        FullPrecision::new(base.clone()),
        HnswParams {
            c: 48,
            r: 8,
            seed: 3,
        },
    );
    let frozen = index.freeze();
    let path = tmp("pipeline.bin");
    frozen.save(&path).unwrap();
    let reloaded = GraphLayers::load(&path).unwrap();

    // Same adjacency ⇒ same greedy routes. Spot-check base-layer equality
    // plus entry metadata rather than re-running a full search stack.
    assert_eq!(reloaded.base_edges(), frozen.base_edges());
    assert_eq!(reloaded.entry, frozen.entry);
    assert_eq!(reloaded.adjacency_bytes(), frozen.adjacency_bytes());
}
