//! Engine-parity tests: every `GraphKind` × `Coding` combination built via
//! `IndexBuilder` must return *identical* results to the legacy
//! concrete-type path on the same seed, and every `SearchRequest` option
//! must round-trip through `Box<dyn AnnIndex>`.
//!
//! Exact equality (ids *and* float distances) is intentional: the engine
//! wrappers delegate to the same search kernels the legacy inherent
//! methods use, construction is fully deterministic per seed (no hash
//! containers, seeded RNGs, sequential insertion), so any divergence is a
//! wiring bug, not noise.

use hnsw_flash::prelude::*;
use proptest::prelude::*;

const K: usize = 5;
const EF: usize = 48;
const C: usize = 32;
const R: usize = 8;
const SEED: u64 = 7;
const TRAIN: usize = 150;
const PQ_M: usize = 4;
const OPQ_ITERS: usize = 4;

fn workload(n: usize, n_queries: usize) -> (VectorSet, VectorSet) {
    generate(&DatasetSpec::new(32, 20, 0.95, 0.4, 5), n, n_queries, 1234)
}

fn flash_fp() -> FlashParams {
    FlashParams {
        d_f: 16,
        m_f: 4,
        train_sample: TRAIN,
        kmeans_iters: 5,
        seed: SEED,
        grid_quantile: 0.5,
    }
}

/// The engine builder configured exactly like the legacy paths below.
fn builder(kind: GraphKind, coding: Coding) -> IndexBuilder {
    IndexBuilder::new(kind, coding)
        .c(C)
        .r(R)
        .seed(SEED)
        .train_sample(TRAIN)
        .pq_m(PQ_M)
        .opq_iters(OPQ_ITERS)
        .flash_params(flash_fp())
}

/// Legacy concrete-type search closure for one combination: builds the
/// pre-engine way (`Hnsw::build`, `Nsg::build`, …) over the matching
/// provider and searches with the inherent method.
fn legacy_search_fn(
    kind: GraphKind,
    coding: Coding,
    base: VectorSet,
) -> Box<dyn Fn(&[f32], usize, usize) -> Vec<hnsw_flash::engine::Hit>> {
    fn with_kind<P: DistanceProvider + 'static>(
        kind: GraphKind,
        provider: P,
    ) -> Box<dyn Fn(&[f32], usize, usize) -> Vec<hnsw_flash::engine::Hit>> {
        match kind {
            GraphKind::Hnsw => {
                let idx = Hnsw::build(
                    provider,
                    HnswParams {
                        c: C,
                        r: R,
                        seed: SEED,
                    },
                );
                Box::new(move |q, k, ef| idx.search(q, k, ef))
            }
            GraphKind::Nsg => {
                let idx = Nsg::build(
                    provider,
                    NsgParams {
                        r: R,
                        c: C,
                        seed: SEED,
                    },
                );
                Box::new(move |q, k, ef| idx.search(q, k, ef))
            }
            GraphKind::TauMg => {
                let idx = TauMg::build(
                    provider,
                    TauMgParams {
                        flat: NsgParams {
                            r: R,
                            c: C,
                            seed: SEED,
                        },
                        tau: 0.1,
                    },
                );
                Box::new(move |q, k, ef| idx.search(q, k, ef))
            }
            GraphKind::Vamana => {
                let idx = Vamana::build(
                    provider,
                    VamanaParams {
                        r: R,
                        c: C,
                        alpha: 1.2,
                        seed: SEED,
                    },
                );
                Box::new(move |q, k, ef| idx.search(q, k, ef))
            }
            GraphKind::Hcnng => {
                let idx = Hcnng::build(
                    provider,
                    HcnngParams {
                        trees: 10,
                        leaf_size: 48,
                        mst_degree: 3,
                        seed: SEED,
                    },
                );
                Box::new(move |q, k, ef| idx.search(q, k, ef))
            }
        }
    }

    match coding {
        Coding::Full => with_kind(kind, FullPrecision::new(base)),
        Coding::Sq => with_kind(kind, SqProvider::new(base, 8)),
        Coding::Pca => with_kind(kind, PcaProvider::with_variance(base, 0.9, TRAIN)),
        Coding::Pq => with_kind(kind, PqProvider::new(base, PQ_M, 8, TRAIN, SEED)),
        Coding::Opq => with_kind(
            kind,
            OpqProvider::new(base, PQ_M, 8, OPQ_ITERS, TRAIN, SEED),
        ),
        Coding::Flash => with_kind(kind, FlashProvider::new(base, flash_fp())),
    }
}

/// The acceptance matrix: all 30 graph × coding combinations are
/// constructible via `IndexBuilder`, searchable through
/// `Box<dyn AnnIndex>`, and bit-identical to the legacy path.
#[test]
fn every_combination_matches_legacy_path() {
    let (base, queries) = workload(260, 4);
    for kind in GraphKind::ALL {
        for coding in Coding::ALL {
            let legacy = legacy_search_fn(kind, coding, base.clone());
            let index: Box<dyn AnnIndex> = builder(kind, coding).build(base.clone());
            assert_eq!(index.len(), base.len(), "{kind}:{coding} len");
            assert_eq!(index.dim(), base.dim(), "{kind}:{coding} dim");
            assert!(index.memory_bytes() > 0, "{kind}:{coding} memory_bytes");
            for qi in 0..queries.len() {
                let q = queries.get(qi);
                let expected = legacy(q, K, EF);
                let got = index.search(&SearchRequest::new(q, K).ef(EF)).hits;
                assert_eq!(expected, got, "{kind}:{coding} query {qi}");
                for w in got.windows(2) {
                    assert!(
                        (w[0].dist, w[0].id) <= (w[1].dist, w[1].id),
                        "{kind}:{coding} hits must sort ascending by (dist, id)"
                    );
                }
            }
        }
    }
}

/// Reranked requests match the legacy `search_rerank` on every graph kind
/// that exposes one (τ-MG never had a rerank helper; the engine gives it
/// one with the shared formula).
#[test]
fn rerank_matches_legacy_helpers() {
    let (base, queries) = workload(260, 3);
    let q = queries.get(0);

    let flash_index = builder(GraphKind::Hnsw, Coding::Flash).build(base.clone());
    let legacy = FlashHnsw::build_flash(
        base.clone(),
        flash_fp(),
        HnswParams {
            c: C,
            r: R,
            seed: SEED,
        },
    );
    let got = flash_index
        .search(&SearchRequest::new(q, K).ef(EF).rerank(6))
        .hits;
    assert_eq!(legacy.search_rerank(q, K, EF, 6), got);

    let nsg_index = builder(GraphKind::Nsg, Coding::Flash).build(base.clone());
    let legacy = build_flash_nsg(
        base,
        flash_fp(),
        NsgParams {
            r: R,
            c: C,
            seed: SEED,
        },
    );
    let got = nsg_index
        .search(&SearchRequest::new(q, K).ef(EF).rerank(6))
        .hits;
    assert_eq!(legacy.search_rerank(q, K, EF, 6), got);
}

/// Filter options round-trip through the trait object and agree with the
/// legacy filtered search.
#[test]
fn filters_round_trip_through_box_dyn() {
    let (base, queries) = workload(260, 3);
    let index: Box<dyn AnnIndex> = builder(GraphKind::Hnsw, Coding::Full).build(base.clone());
    let legacy = Hnsw::build(
        FullPrecision::new(base.clone()),
        HnswParams {
            c: C,
            r: R,
            seed: SEED,
        },
    );
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let req = SearchRequest::new(q, K).ef(EF).filter(|id| id % 3 == 0);
        let got = index.search(&req).hits;
        assert!(!got.is_empty());
        assert!(got.iter().all(|h| h.id % 3 == 0), "predicate violated");
        let accept = |id: u32| u64::from(id) % 3 == 0;
        assert_eq!(legacy.search_filtered(q, K, EF, &accept), got, "query {qi}");
    }
    // Filtered search works on flat graphs through the same request.
    let nsg: Box<dyn AnnIndex> = builder(GraphKind::Nsg, Coding::Full).build(base);
    let got = nsg.search(
        &SearchRequest::new(queries.get(0), K)
            .ef(EF)
            .filter(|id| id % 2 == 0),
    );
    assert!(!got.hits.is_empty());
    assert!(got.hits.iter().all(|h| h.id % 2 == 0));
}

/// VBase and ADSampling options match their direct function-call forms.
#[test]
fn vbase_and_adsampling_match_direct_calls() {
    let (base, queries) = workload(260, 3);
    let q = queries.get(1);
    let index = builder(GraphKind::Hnsw, Coding::Full).build(base.clone());
    let legacy = Hnsw::build(
        FullPrecision::new(base.clone()),
        HnswParams {
            c: C,
            r: R,
            seed: SEED,
        },
    );
    let frozen = legacy.freeze();
    let provider = FullPrecision::new(base.clone());

    let got = index.search(&SearchRequest::new(q, K).vbase(40)).hits;
    let direct = graphs::vbase::search_vbase(&provider, &frozen, q, K, 40);
    assert_eq!(direct, got);

    let opts = AdSamplingOptions {
        epsilon0: 2.1,
        delta_d: 16,
        seed: 3,
    };
    let resp = index.search(&SearchRequest::new(q, K).adsampling(opts));
    let sampler = graphs::adsampling::AdSampler::new(&base, 2.1, 16, 3);
    let (direct, stats) = sampler.search(&frozen, q, K, SearchRequest::new(q, K).ef);
    assert_eq!(direct, resp.hits);
    assert_eq!(stats.evals, resp.stats.evaluated);
    assert_eq!(stats.abandoned, resp.stats.abandoned);
}

/// `IndexBuilder::serve` (reload path) matches serving the frozen
/// topology through the standalone layer-search functions.
#[test]
fn frozen_serving_matches_layer_search() {
    let (base, queries) = workload(260, 3);
    let built = builder(GraphKind::Hnsw, Coding::Flash).build(base.clone());
    let topology = built.export_graph().unwrap();
    let served = builder(GraphKind::Hnsw, Coding::Flash)
        .serve(base.clone(), topology.clone())
        .unwrap();
    let provider = FlashProvider::new(base, flash_fp());
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let got = served
            .search(&SearchRequest::new(q, K).ef(EF).rerank(8))
            .hits;
        let direct = graphs::search_layers_rerank(&provider, &topology, q, K, EF, 8);
        assert_eq!(direct, got, "query {qi}");
    }
    // Mismatched topology is rejected up front.
    let (tiny, _) = workload(40, 1);
    assert!(builder(GraphKind::Hnsw, Coding::Full)
        .serve(tiny, topology)
        .is_err());
}

/// The brute-force baseline is exact: it reproduces the ground truth.
#[test]
fn flat_index_is_exact() {
    let (base, queries) = workload(200, 4);
    let gt = ground_truth(&base, &queries, K);
    let flat = FlatIndex::new(base);
    for (qi, truth) in gt.iter().enumerate() {
        let hits = flat.search(&SearchRequest::new(queries.get(qi), K)).hits;
        let got: Vec<u64> = hits.iter().map(|h| h.id).collect();
        let expected: Vec<u64> = truth.iter().map(|t| u64::from(t.id)).collect();
        assert_eq!(expected, got, "query {qi}");
    }
}

/// The LSM index serves identical results through the trait and honors
/// the predicate filter.
#[test]
fn lsm_serves_through_the_trait() {
    let (base, queries) = workload(300, 2);
    let mut config = LsmConfig::for_dim(32);
    config.memtable_cap = 128;
    config.hnsw = HnswParams {
        c: C,
        r: R,
        seed: SEED,
    };
    let mut lsm = LsmVectorIndex::new(config);
    let ids: Vec<u64> = base.iter().map(|v| lsm.insert(v)).collect();
    lsm.delete(ids[3]);

    let q = queries.get(0);
    let via_trait = AnnIndex::search(&lsm, &SearchRequest::new(q, K).ef(EF)).hits;
    assert_eq!(LsmVectorIndex::search(&lsm, q, K, EF), via_trait);
    assert_eq!(AnnIndex::len(&lsm), 299);
    assert_eq!(AnnIndex::dim(&lsm), 32);

    let filtered = AnnIndex::search(
        &lsm,
        &SearchRequest::new(q, K).ef(EF).filter(|id| id % 2 == 1),
    );
    assert!(filtered.hits.iter().all(|h| h.id % 2 == 1));
}

/// Per-label specialization builds through the builder and answers only
/// labeled requests.
#[test]
fn labeled_index_serves_label_requests() {
    let (base, queries) = workload(240, 2);
    let labels: Vec<u32> = (0..base.len() as u32).map(|i| i % 3).collect();
    let index = builder(GraphKind::Hnsw, Coding::Flash)
        .build_labeled(&base, &labels, 16)
        .unwrap();
    assert_eq!(index.len(), base.len());
    assert_eq!(index.dim(), 32);

    let q = queries.get(0);
    let unlabeled = index.search(&SearchRequest::new(q, K).ef(EF));
    assert!(
        unlabeled.hits.is_empty(),
        "label-less requests return nothing"
    );
    let hits = index.search(&SearchRequest::new(q, K).ef(EF).label(1)).hits;
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|h| labels[h.id as usize] == 1));

    // Non-HNSW specialization is rejected with a clear error.
    assert!(builder(GraphKind::Nsg, Coding::Full)
        .build_labeled(&base, &labels, 16)
        .is_err());
}

/// Batched serving equals sequential serving.
#[test]
fn search_batch_matches_sequential() {
    let (base, queries) = workload(220, 6);
    let index = builder(GraphKind::Vamana, Coding::Sq).build(base);
    let requests: Vec<SearchRequest> = (0..queries.len())
        .map(|qi| SearchRequest::new(queries.get(qi), K).ef(EF))
        .collect();
    let batched = index.search_batch(&requests);
    assert_eq!(batched.len(), requests.len());
    for (req, resp) in requests.iter().zip(&batched) {
        assert_eq!(index.search(req).hits, resp.hits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Engine/legacy parity holds for arbitrary seeds and k on the
    /// flagship combination (HNSW × Flash), not just the fixed seed the
    /// matrix test uses.
    #[test]
    fn hnsw_flash_parity_over_random_seeds(seed in 0u64..1000, k in 1usize..8) {
        let (base, queries) = workload(200, 2);
        let mut fp = flash_fp();
        fp.seed = seed;
        let index = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash)
            .c(C)
            .r(R)
            .seed(seed)
            .flash_params(fp)
            .build(base.clone());
        let legacy =
            FlashHnsw::build_flash(base, fp, HnswParams { c: C, r: R, seed });
        for qi in 0..queries.len() {
            let q = queries.get(qi);
            prop_assert_eq!(
                legacy.search(q, k, EF),
                index.search(&SearchRequest::new(q, k).ef(EF)).hits
            );
        }
    }
}
