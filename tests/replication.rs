//! Replication/failover exactness: a replicated fleet must be *exactly*
//! the unreplicated `ShardedIndex`, which is itself exactly the
//! brute-force `FlatIndex`, across (shards × replicas) grids and every
//! routing policy — including with replicas killed mid-run through
//! deterministic `FaultPlan`s.
//!
//! Exactness setup (same as `tests/serving.rs`): `EF ≥ N` makes every
//! connected graph search exhaustive and `K · RERANK ≥ N` reranks every
//! candidate with full-precision distances, so every index in play
//! returns the identical global `(dist, id)` top-k. Replicas of a shard
//! are identical by construction (deterministic builds from one shared
//! codec), which is what makes failover invisible in the results.

use hnsw_flash::prelude::*;
use std::sync::Arc;

const N: usize = 180;
const DIM: usize = 12;
const K: usize = 8;
const EF: usize = 256; // > N: exhaustive traversal of connected graphs
const RERANK: usize = 32; // pool K*RERANK = 256 > N: rerank everything

const COMBOS: [(GraphKind, Coding); 3] = [
    (GraphKind::Hnsw, Coding::Flash),
    (GraphKind::Nsg, Coding::Full),
    (GraphKind::Vamana, Coding::Sq),
];

fn workload() -> (VectorSet, VectorSet) {
    generate(&DatasetSpec::new(DIM, 10, 0.95, 0.4, 4), N, 10, 77)
}

fn builder(kind: GraphKind, coding: Coding) -> IndexBuilder {
    IndexBuilder::new(kind, coding)
        .c(32)
        .r(8)
        .seed(7)
        .train_sample(100)
        .pq_m(4)
}

fn exact_request(q: &[f32]) -> SearchRequest {
    SearchRequest::new(q.to_vec(), K).ef(EF).rerank(RERANK)
}

/// Assembles a sharded fleet whose shard `s` replica `r` serves the
/// pre-built `shard_indexes[s]` (replicas share the physical index — the
/// router cannot tell, and it keeps the grid × policy sweep affordable),
/// wrapped in a `FaultyIndex` when `fault_for(s, r)` scripts one.
fn fleet(
    shard_indexes: &[Arc<dyn AnnIndex>],
    id_maps: &[Vec<u64>],
    replicas: usize,
    routing: RoutingPolicy,
    health: HealthConfig,
    fault_for: impl Fn(usize, usize) -> Option<FaultPlan>,
) -> (ShardedIndex, Vec<Arc<ReplicaGroup>>) {
    let mut groups = Vec::new();
    let parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = shard_indexes
        .iter()
        .zip(id_maps)
        .enumerate()
        .map(|(s, (index, ids))| {
            let members: Vec<Box<dyn FallibleIndex>> = (0..replicas)
                .map(|r| match fault_for(s, r) {
                    Some(plan) => Box::new(FaultyIndex::new(Arc::clone(index), plan))
                        as Box<dyn FallibleIndex>,
                    None => Box::new(Arc::clone(index)) as Box<dyn FallibleIndex>,
                })
                .collect();
            let group = Arc::new(ReplicaGroup::from_replicas(members, routing, health));
            groups.push(Arc::clone(&group));
            (Box::new(group) as Box<dyn AnnIndex>, ids.clone())
        })
        .collect();
    let sharded =
        ShardedIndex::from_parts(parts, ShardPolicy::RoundRobin, Arc::new(WorkerPool::new(4)));
    (sharded, groups)
}

/// Builds one sub-index per shard with the codec trained once globally.
fn shard_indexes(
    base: &VectorSet,
    b: &IndexBuilder,
    shards: usize,
) -> (Vec<Arc<dyn AnnIndex>>, Vec<Vec<u64>>) {
    let codec = b.train_codec(base);
    ShardedIndex::partition(base, shards, ShardPolicy::RoundRobin)
        .into_iter()
        .map(|(set, ids)| {
            (
                Arc::from(b.build_with_codec(set, &codec)) as Arc<dyn AnnIndex>,
                ids,
            )
        })
        .unzip()
}

/// Healthy fleets: for every combo, (shards × replicas) grid point, and
/// routing policy, the replicated fleet equals the unreplicated
/// `ShardedIndex` equals the brute-force ground truth — bit-identical
/// hits, ties included.
#[test]
fn replicated_equals_unreplicated_equals_flat_across_grid() {
    let (base, queries) = workload();
    let flat = FlatIndex::new(base.clone());
    for (kind, coding) in COMBOS {
        let b = builder(kind, coding);
        for shards in [1usize, 2, 5] {
            let unreplicated =
                ShardedIndex::build(base.clone(), &b, shards, ShardPolicy::RoundRobin, 4);
            let (indexes, id_maps) = shard_indexes(&base, &b, shards);
            for replicas in [1usize, 2, 3] {
                for routing in RoutingPolicy::ALL {
                    let (fleet, _) = fleet(
                        &indexes,
                        &id_maps,
                        replicas,
                        routing,
                        HealthConfig::default(),
                        |_, _| None,
                    );
                    assert_eq!(fleet.len(), base.len());
                    for qi in 0..queries.len() {
                        let req = exact_request(queries.get(qi));
                        let want = flat.search(&req).hits;
                        assert_eq!(
                            unreplicated.search(&req).hits,
                            want,
                            "{kind:?}x{coding:?} shards={shards} unreplicated != flat (query {qi})"
                        );
                        assert_eq!(
                            fleet.search(&req).hits,
                            want,
                            "{kind:?}x{coding:?} shards={shards} replicas={replicas} \
                             routing={routing} != flat (query {qi})"
                        );
                    }
                }
            }
        }
    }
}

/// Independently built replicas (the real `ReplicatedIndex::build` path —
/// R separate deterministic constructions per shard sharing one codec)
/// serve results identical to the unreplicated sharded build and the
/// brute-force ground truth.
#[test]
fn independently_built_replicas_are_bit_identical() {
    let (base, queries) = workload();
    let flat = FlatIndex::new(base.clone());
    for (kind, coding) in COMBOS {
        let b = builder(kind, coding);
        let unreplicated = ShardedIndex::build(base.clone(), &b, 2, ShardPolicy::RoundRobin, 4);
        let replicated = ReplicatedIndex::build(
            base.clone(),
            &b,
            2,
            2,
            ShardPolicy::RoundRobin,
            RoutingPolicy::RoundRobin,
            HealthConfig::default(),
            4,
        );
        assert_eq!(replicated.shard_count(), 2);
        assert_eq!(replicated.replica_count(), 2);
        for qi in 0..queries.len() {
            let req = exact_request(queries.get(qi));
            let want = flat.search(&req).hits;
            assert_eq!(unreplicated.search(&req).hits, want, "{kind:?}x{coding:?}");
            assert_eq!(replicated.search(&req).hits, want, "{kind:?}x{coding:?}");
        }
        // Round-robin routing spread the traffic across both replicas.
        let stats = replicated.replica_stats();
        for (s, shard_stats) in stats.iter().enumerate() {
            for (r, replica) in shard_stats.iter().enumerate() {
                assert!(
                    replica.searches > 0,
                    "{kind:?}x{coding:?} shard {s} replica {r} never served"
                );
            }
        }
    }
}

/// Killing each replica in turn mid-run changes nothing in the results,
/// for every routing policy: the sibling serves bit-identical hits, the
/// victim is marked down, and the failover counters account for it.
#[test]
fn killing_each_replica_in_turn_preserves_results() {
    let (base, queries) = workload();
    let flat = FlatIndex::new(base.clone());
    let shards = 2usize;
    let replicas = 3usize;
    for (kind, coding) in COMBOS {
        let b = builder(kind, coding);
        let (indexes, id_maps) = shard_indexes(&base, &b, shards);
        for victim in 0..replicas {
            for routing in RoutingPolicy::ALL {
                // The victim replica of every shard serves 2 calls, then
                // dies permanently — mid-run, not before it.
                let (fleet, groups) = fleet(
                    &indexes,
                    &id_maps,
                    replicas,
                    routing,
                    HealthConfig::default(),
                    |_, r| (r == victim).then(|| FaultPlan::new().die_at(2)),
                );
                for qi in 0..queries.len() {
                    let req = exact_request(queries.get(qi));
                    assert_eq!(
                        fleet.search(&req).hits,
                        flat.search(&req).hits,
                        "{kind:?}x{coding:?} victim={victim} routing={routing} (query {qi})"
                    );
                }
                for (s, group) in groups.iter().enumerate() {
                    let stats = group.replica_stats();
                    // The victim died only if routing ever offered it a
                    // third call; when it did, the failover is accounted.
                    if stats[victim].errors > 0 {
                        assert!(
                            group.is_marked_down(victim),
                            "{kind:?}x{coding:?} shard {s} victim={victim} routing={routing}"
                        );
                        assert_eq!(stats[victim].markdowns, 1);
                        assert!(stats[victim].retries >= 1);
                        assert!(group.generation() >= 1);
                    }
                    // Whatever happened, the group kept serving.
                    let healthy_searches: u64 = stats
                        .iter()
                        .enumerate()
                        .filter(|&(r, _)| r != victim)
                        .map(|(_, s)| s.searches)
                        .sum();
                    assert!(healthy_searches > 0, "siblings must have served");
                }
            }
        }
    }
    // Under Primary routing the victim *is* the primary when victim == 0:
    // make sure that case really exercised the death (not a vacuous pass).
    let b = builder(GraphKind::Hnsw, Coding::Flash);
    let (indexes, id_maps) = shard_indexes(&base, &b, shards);
    let (fleet, groups) = fleet(
        &indexes,
        &id_maps,
        replicas,
        RoutingPolicy::Primary,
        HealthConfig::default(),
        |_, r| (r == 0).then(|| FaultPlan::new().die_at(2)),
    );
    for qi in 0..queries.len() {
        let _ = fleet.search(&exact_request(queries.get(qi)));
    }
    for group in &groups {
        assert!(group.is_marked_down(0), "primary must have died mid-run");
        assert_eq!(group.failover_stats().markdowns, 1);
    }
}

/// Distance ties straddling shard boundaries keep the global `(dist, id)`
/// order across a failover: duplicated vectors land in different shards,
/// one replica per shard dies, and the merged order is still exact.
#[test]
fn tie_order_preserved_across_failover() {
    let mut base = VectorSet::new(4);
    for i in 0..20 {
        // Vectors 2i and 2i+1 are identical; round-robin over 2 shards
        // places the twins in different shards.
        let v = [i as f32, (i * i) as f32, 1.0, 0.0];
        base.push(&v);
        base.push(&v);
    }
    let flat = FlatIndex::new(base.clone());
    let (indexes, id_maps): (Vec<Arc<dyn AnnIndex>>, Vec<Vec<u64>>) =
        ShardedIndex::partition(&base, 2, ShardPolicy::RoundRobin)
            .into_iter()
            .map(|(set, ids)| (Arc::new(FlatIndex::new(set)) as Arc<dyn AnnIndex>, ids))
            .unzip();
    for routing in RoutingPolicy::ALL {
        let (fleet, _) = fleet(
            &indexes,
            &id_maps,
            2,
            routing,
            HealthConfig::default(),
            |_, r| (r == 0).then(|| FaultPlan::new().die_at(0)),
        );
        for i in [0usize, 7, 19] {
            let req = SearchRequest::new(base.get(2 * i).to_vec(), 6);
            let (want, got) = (flat.search(&req).hits, fleet.search(&req).hits);
            assert_eq!(got, want, "routing={routing} twin pair {i}");
            assert_eq!(got[0].id, 2 * i as u64);
            assert_eq!(got[1].id, 2 * i as u64 + 1);
            assert_eq!((got[0].dist, got[1].dist), (0.0, 0.0));
            for w in got.windows(2) {
                assert!(
                    (w[0].dist, w[0].id) < (w[1].dist, w[1].id),
                    "global (dist, id) order violated under failover"
                );
            }
        }
    }
}

/// The shared-codec path itself: training once globally and encoding per
/// partition yields identical results for every shard count — and for a
/// single partition it is exactly the monolithic `IndexBuilder::build`.
#[test]
fn shared_codec_is_identical_across_shard_counts() {
    let (base, queries) = workload();
    let flat = FlatIndex::new(base.clone());
    for (kind, coding) in COMBOS {
        let b = builder(kind, coding);
        let codec = b.train_codec(&base);
        assert_eq!(codec.coding(), coding);
        // One partition + shared codec == the monolithic build.
        let monolithic = b.build(base.clone());
        let via_codec = b.build_with_codec(base.clone(), &codec);
        for qi in 0..queries.len() {
            let req = exact_request(queries.get(qi));
            let want = flat.search(&req).hits;
            assert_eq!(monolithic.search(&req).hits, want, "{kind:?}x{coding:?}");
            assert_eq!(
                via_codec.search(&req).hits,
                want,
                "{kind:?}x{coding:?} single-partition shared codec"
            );
        }
        // Every shard count serves the same exact results.
        for shards in [2usize, 3, 4] {
            let sharded = ShardedIndex::build(base.clone(), &b, shards, ShardPolicy::RoundRobin, 4);
            for qi in 0..queries.len() {
                let req = exact_request(queries.get(qi));
                assert_eq!(
                    sharded.search(&req).hits,
                    flat.search(&req).hits,
                    "{kind:?}x{coding:?} shards={shards}"
                );
            }
        }
    }
}

/// A coding-mismatched codec is rejected loudly, not silently misused.
#[test]
#[should_panic(expected = "codec was trained for")]
fn mismatched_codec_is_rejected() {
    let (base, _) = workload();
    let codec = builder(GraphKind::Hnsw, Coding::Sq).train_codec(&base);
    let _ = builder(GraphKind::Hnsw, Coding::Flash).build_with_codec(base, &codec);
}
