//! The maintenance-window scenario from the paper's introduction: a live
//! index absorbs inserts and deletes all day, then rebuilds overnight.
//!
//! ```text
//! cargo run --release --example nightly_rebuild
//! ```
//!
//! Drives an LSM vector index (memtable + sealed HNSW-Flash segments)
//! through a day of churn, shows the accumulated fragmentation, then runs
//! the rebuild and reports how the Flash-built compaction restores a
//! single clean segment. Queries go through the engine's `AnnIndex`
//! trait — the same serving surface every graph index uses — while the
//! mutation API (`insert` / `delete` / `rebuild`) stays on the concrete
//! LSM type.

use hnsw_flash::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let dim = 128;
    let initial = 8_000;
    let day_ops = 4_000;

    let mut config = LsmConfig::for_dim(dim);
    config.memtable_cap = 1_024;
    config.hnsw = HnswParams {
        c: 96,
        r: 12,
        seed: 3,
    };
    let mut index = LsmVectorIndex::new(config);

    let mut rng = SmallRng::seed_from_u64(0xDA7);
    let mut fresh = || -> Vec<f32> {
        let c = rng.gen_range(0..6) as f32;
        (0..dim).map(|_| c + rng.gen_range(-0.5..0.5f32)).collect()
    };

    println!("loading {initial} vectors...");
    let mut live: Vec<u64> = (0..initial).map(|_| index.insert(&fresh())).collect();
    index.flush();
    let s = index.stats();
    println!("after load: {} segments, {} live", s.segments, s.live);

    println!("\nsimulating a day of churn ({day_ops} deletes + {day_ops} inserts)...");
    let mut pick = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..day_ops {
        let victim = live.swap_remove(pick.gen_range(0..live.len()));
        index.delete(victim);
        live.push(index.insert(&fresh()));
    }
    index.flush();

    let before = index.stats();
    println!(
        "before rebuild: {} segments, {} live, {} tombstones, {:.1} MB",
        before.segments,
        before.live,
        before.dead,
        index.bytes() as f64 / 1e6
    );

    // A probe query before and after, to show results stay consistent —
    // served through the engine trait.
    let q = fresh();
    let probe = SearchRequest::new(q, 5).ef(96);
    let hits_before = AnnIndex::search(&index, &probe).hits;

    println!("\nrunning the overnight rebuild (Flash-accelerated compaction)...");
    let report = index.rebuild();
    println!(
        "rebuild: {} vectors compacted, {} tombstones reclaimed, took {:.2?}",
        report.vectors, report.reclaimed, report.duration
    );

    let after = index.stats();
    println!(
        "after rebuild: {} segment, {} live, {} tombstones, {:.1} MB",
        after.segments,
        after.live,
        after.dead,
        index.bytes() as f64 / 1e6
    );

    let hits_after = AnnIndex::search(&index, &probe).hits;
    println!("\ntop-5 for a probe query (before → after):");
    for (a, b) in hits_before.iter().zip(hits_after.iter()) {
        println!(
            "  {:>7} (d {:.4})  →  {:>7} (d {:.4})",
            a.id, a.dist, b.id, b.dist
        );
    }
    assert_eq!(after.segments, 1);
    assert_eq!(after.dead, 0);
}
