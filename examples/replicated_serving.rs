//! Replicated shard groups surviving replica loss with identical results.
//!
//! ```text
//! cargo run --release --example replicated_serving
//! ```
//!
//! Builds a 4-shard × 2-replica [`ReplicatedIndex`] (one globally-trained
//! Flash codec shared by all 8 sub-indexes), drives the same batched
//! workload through a healthy fleet and through a fleet whose replica 0
//! dies mid-run in **every** shard ([`FaultPlan`] injection), and checks
//! the responses are bit-identical — failover is invisible to callers.
//! A third run scripts recovery and watches the probe path bring the
//! replicas back, printing the per-replica retry/mark-down/probe counters
//! the `flash_cli search --replicas` summary also reports.

use hnsw_flash::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 6_000;
    let (shards, replicas, threads) = (4, 2, 4);
    println!("generating {n} vectors (DataComp-like, 256-d)...");
    let (base, queries) = generate(&DatasetProfile::DatacompLike.spec(), n, 48, 17);
    let gt = ground_truth(&base, &queries, 10);
    let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash)
        .c(96)
        .r(12)
        .seed(11);

    // ---------- build: one codec, shards × replicas sub-indexes --------
    let t0 = Instant::now();
    let build = |fault_for: &dyn Fn(usize, usize) -> Option<FaultPlan>| {
        ReplicatedIndex::build_with_faults(
            base.clone(),
            &builder,
            shards,
            replicas,
            ShardPolicy::RoundRobin,
            RoutingPolicy::RoundRobin,
            HealthConfig {
                error_threshold: 1,
                probe_after: 8,
            },
            threads,
            fault_for,
        )
    };
    let healthy = build(&|_, _| None);
    println!(
        "built {} x {} replicas in {:.2?} (codec trained once, {:.1} MB resident)",
        healthy.shard_count(),
        healthy.replica_count(),
        t0.elapsed(),
        healthy.memory_bytes() as f64 / 1e6,
    );

    let requests =
        || (0..queries.len()).map(|qi| SearchRequest::new(queries.get(qi), 10).ef(96).rerank(8));
    let run = |index: Arc<dyn AnnIndex>, label: &str| {
        let mut executor = BatchExecutor::new(index).batch_size(16);
        executor.submit_all(requests());
        let report = executor.run();
        let found: Vec<Vec<u32>> = report
            .responses
            .iter()
            .map(|r| r.hits.iter().map(|h| h.id as u32).collect())
            .collect();
        let recall = recall_at_k(&found, &gt, 10).recall();
        let latency = report.latency();
        println!(
            "{label}: qps={:.0} p50={:.3}ms p99={:.3}ms recall@10={recall:.4}",
            report.qps.qps(),
            latency.p50_ms,
            latency.p99_ms,
        );
        report
    };

    // ---------- healthy fleet -----------------------------------------
    let healthy = Arc::new(healthy);
    let healthy_report = run(
        Arc::clone(&healthy) as Arc<dyn AnnIndex>,
        "healthy fleet        ",
    );

    // ---------- kill replica 0 of every shard mid-run ------------------
    // Each shard's replica 0 serves its first 5 calls, then dies. The
    // router retries the sibling; callers never notice.
    let wounded = Arc::new(build(&|_, r| (r == 0).then(|| FaultPlan::new().die_at(5))));
    let wounded_report = run(
        Arc::clone(&wounded) as Arc<dyn AnnIndex>,
        "replica 0 dies @5    ",
    );
    for (a, b) in healthy_report
        .responses
        .iter()
        .zip(&wounded_report.responses)
    {
        assert_eq!(a.hits, b.hits, "failover must not change results");
    }
    let f = wounded.failover_stats();
    println!(
        "  -> bit-identical responses; retries={} markdowns={} probes={}",
        f.retries, f.markdowns, f.probes
    );
    assert_eq!(f.markdowns, shards as u64, "every shard lost its primary");
    assert!(f.retries >= f.markdowns);

    // ---------- scripted recovery: probes bring replicas back ----------
    let recovering = Arc::new(build(&|_, r| {
        (r == 0).then(|| FaultPlan::new().die_at(5).revive_at(7))
    }));
    let recovering_report = run(
        Arc::clone(&recovering) as Arc<dyn AnnIndex>,
        "dies @5, revives @7  ",
    );
    for (a, b) in healthy_report
        .responses
        .iter()
        .zip(&recovering_report.responses)
    {
        assert_eq!(a.hits, b.hits, "recovery must not change results");
    }
    let f = recovering.failover_stats();
    println!(
        "  -> bit-identical responses; retries={} markdowns={} probes={} recoveries={}",
        f.retries, f.markdowns, f.probes, f.recoveries
    );
    assert_eq!(
        f.recoveries, shards as u64,
        "every shard's replica 0 must be probed back"
    );
    for (s, group) in recovering.groups().iter().enumerate() {
        assert!(
            !group.is_marked_down(0),
            "shard {s} replica 0 should be back in routing"
        );
        let stats = group.replica_stats();
        println!(
            "  shard {s}: replica0 searches={} errors={} probes={} | replica1 searches={} errors={}",
            stats[0].searches, stats[0].errors, stats[0].probes, stats[1].searches, stats[1].errors,
        );
    }

    // ---------- cache over the fleet: generation-safe across failover --
    let cached = Arc::new(CachedIndex::new(
        Arc::clone(&wounded) as Arc<dyn AnnIndex>,
        1024,
    ));
    cached.cache().set_generation(wounded.generation());
    let req = SearchRequest::new(queries.get(0), 10).ef(96).rerank(8);
    let first = cached.search(&req);
    let second = cached.search(&req);
    assert_eq!(first.hits, second.hits);
    let stats = cached.cache().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    println!(
        "cache over the wounded fleet: {} hit / {} miss (generation {} synced)",
        stats.hits,
        stats.misses,
        wounded.generation()
    );
}
