//! Build overnight, serve after restart: persist a Flash index's topology,
//! reload it in a "fresh process", and serve queries at full speed.
//!
//! ```text
//! cargo run --release --example persisted_serving
//! ```
//!
//! Demonstrates the two persistence layers:
//! * `graphs::persist` + `Hnsw::from_frozen` for a single index (codes are
//!   re-derived deterministically from the dataset — only adjacency is
//!   stored);
//! * `maintenance`'s directory format for a whole LSM index (segments,
//!   tombstones, id counter).

use hnsw_flash::prelude::*;
use hnsw_flash::{graphs, maintenance};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("hnsw_flash_persisted_serving");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // ---------- single index: build → save topology → reload → serve ----
    let n = 15_000;
    println!("building HNSW-Flash over {n} vectors (SSNPP-like, 256-d)...");
    let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), n, 50, 17);
    let gt = ground_truth(&base, &queries, 10);
    let flash_params = FlashParams::auto(256);
    let hnsw_params = HnswParams { c: 128, r: 16, seed: 11 };

    let t0 = Instant::now();
    let built = FlashHnsw::build_flash(base.clone(), flash_params, hnsw_params);
    println!("built in {:.2?}", t0.elapsed());

    let graph_path = dir.join("index.hfg");
    built.freeze().save(&graph_path).unwrap();
    println!("topology saved to {} ({} bytes)", graph_path.display(),
        std::fs::metadata(&graph_path).unwrap().len());
    drop(built); // "process exits"

    // "New process": re-derive the provider (deterministic: same data,
    // same seed) and restore the index around the loaded topology.
    let t0 = Instant::now();
    let topology = graphs::GraphLayers::load(&graph_path).unwrap();
    let provider = FlashProvider::new(base, flash_params);
    let served = graphs::Hnsw::from_frozen(provider, hnsw_params, &topology);
    println!("reloaded + re-encoded in {:.2?} (no graph construction)", t0.elapsed());

    let found: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            served.search_rerank(queries.get(qi), 10, 128, 8).iter().map(|r| r.id).collect()
        })
        .collect();
    let recall = recall_at_k(&found, &gt, 10).recall();
    println!("served recall@10 from the reloaded index: {recall:.4}");
    assert!(recall > 0.9);

    // ---------- whole LSM index: churn → save → reload → verify ---------
    println!("\nLSM index: insert, delete, save, reload...");
    let mut config = LsmConfig::for_dim(64);
    config.memtable_cap = 1024;
    let mut lsm = LsmVectorIndex::new(config);
    let (data, _) = generate(&DatasetSpec::new(64, 8, 0.98, 0.3, 5), 5_000, 1, 23);
    let ids: Vec<u64> = data.iter().map(|v| lsm.insert(v)).collect();
    for id in ids.iter().step_by(7) {
        lsm.delete(*id);
    }
    let lsm_dir = dir.join("lsm");
    lsm.save(&lsm_dir).unwrap();
    let before = lsm.stats();

    let reloaded = maintenance::LsmVectorIndex::load(&lsm_dir).unwrap();
    let after = reloaded.stats();
    println!("live vectors: {} before save, {} after reload", before.live, after.live);
    assert_eq!(before.live, after.live);

    // Same query against the pre-save and reloaded index must agree hit
    // for hit — the reloaded segments serve the identical graph.
    let probe = data.get(8); // id 8 survives the step_by(7) deletes
    let before_hits: Vec<u64> = lsm.search(probe, 5, 192).iter().map(|h| h.id).collect();
    let after_hits: Vec<u64> = reloaded.search(probe, 5, 192).iter().map(|h| h.id).collect();
    println!("self-query top-5 before save: {before_hits:?}");
    println!("self-query top-5 after load:  {after_hits:?}");
    assert_eq!(before_hits, after_hits);
    println!("\nok: both persistence layers round-trip.");
}
