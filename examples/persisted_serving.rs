//! Build overnight, serve after restart: persist a Flash index's topology,
//! reload it in a "fresh process", and serve queries at full speed.
//!
//! ```text
//! cargo run --release --example persisted_serving
//! ```
//!
//! Demonstrates the two persistence layers, both serving through the
//! engine:
//! * `AnnIndex::export_graph` + `IndexBuilder::serve` for a single index
//!   (codes are re-derived deterministically from the dataset — only
//!   adjacency is stored);
//! * `maintenance`'s directory format for a whole LSM index (segments,
//!   tombstones, id counter), searched through the same trait.

use hnsw_flash::prelude::*;
use hnsw_flash::{graphs, maintenance};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("hnsw_flash_persisted_serving");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // ---------- single index: build → save topology → reload → serve ----
    let n = 15_000;
    println!("building HNSW-Flash over {n} vectors (SSNPP-like, 256-d)...");
    let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), n, 50, 17);
    let gt = ground_truth(&base, &queries, 10);
    let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash)
        .c(128)
        .r(16)
        .seed(11);

    let t0 = Instant::now();
    let built = builder.clone().build(base.clone());
    println!("built in {:.2?}", t0.elapsed());

    let graph_path = dir.join("index.hfg");
    built.export_graph().unwrap().save(&graph_path).unwrap();
    println!(
        "topology saved to {} ({} bytes)",
        graph_path.display(),
        std::fs::metadata(&graph_path).unwrap().len()
    );
    drop(built); // "process exits"

    // "New process": re-derive the provider (deterministic: same data,
    // same seed) and serve the loaded topology — no graph construction.
    let t0 = Instant::now();
    let topology = graphs::GraphLayers::load(&graph_path).unwrap();
    let served = builder.serve(base, topology).unwrap();
    println!(
        "reloaded + re-encoded in {:.2?} (no graph construction)",
        t0.elapsed()
    );

    let found: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            let request = SearchRequest::new(queries.get(qi), 10).ef(128).rerank(8);
            served
                .search(&request)
                .hits
                .iter()
                .map(|h| h.id as u32)
                .collect()
        })
        .collect();
    let recall = recall_at_k(&found, &gt, 10).recall();
    println!("served recall@10 from the reloaded index: {recall:.4}");
    assert!(recall > 0.9);

    // ---------- whole LSM index: churn → save → reload → verify ---------
    println!("\nLSM index: insert, delete, save, reload...");
    let mut config = LsmConfig::for_dim(64);
    config.memtable_cap = 1024;
    let mut lsm = LsmVectorIndex::new(config);
    let (data, _) = generate(&DatasetSpec::new(64, 8, 0.98, 0.3, 5), 5_000, 1, 23);
    let ids: Vec<u64> = data.iter().map(|v| lsm.insert(v)).collect();
    for id in ids.iter().step_by(7) {
        lsm.delete(*id);
    }
    let lsm_dir = dir.join("lsm");
    lsm.save(&lsm_dir).unwrap();
    let before = lsm.stats();

    let reloaded = maintenance::LsmVectorIndex::load(&lsm_dir).unwrap();
    let after = reloaded.stats();
    println!(
        "live vectors: {} before save, {} after reload",
        before.live, after.live
    );
    assert_eq!(before.live, after.live);

    // Same query against the pre-save and reloaded index must agree hit
    // for hit — both served through the engine trait.
    let probe = SearchRequest::new(data.get(8), 5).ef(192); // id 8 survives the deletes
    let before_hits = AnnIndex::search(&lsm, &probe).ids();
    let after_hits = AnnIndex::search(&reloaded, &probe).ids();
    println!("self-query top-5 before save: {before_hits:?}");
    println!("self-query top-5 after load:  {after_hits:?}");
    assert_eq!(before_hits, after_hits);
    println!("\nok: both persistence layers round-trip.");
}
