//! Cross-process distributed serving over a wire transport.
//!
//! ```text
//! cargo run --release --example distributed_serving
//! ```
//!
//! Spins up real node processes' worth of machinery inside one demo
//! process: per-shard indexes hosted by [`NodeServer`]s behind TCP
//! sockets, a coordinator composing [`RemoteIndex`] clients under the
//! unchanged `ShardedIndex`/`ReplicaGroup` stack, and a mid-run node
//! kill that the replica health model routes around with bit-identical
//! results. Prints the per-node transport counters (frames, bytes,
//! errors) next to the failover counters.

use hnsw_flash::prelude::*;
use serving::distributed::{NodeAddr, NodeHandler, NodeServer, RemoteIndex, SocketTransport};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 4_000;
    let shards = 2;
    println!("generating {n} vectors (SSNPP-like)...");
    let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), n, 32, 19);
    let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Sq)
        .c(64)
        .r(8)
        .seed(9);
    let k = 10;
    let gt = ground_truth(&base, &queries, k);
    let requests: Vec<SearchRequest> = (0..queries.len())
        .map(|qi| SearchRequest::new(queries.get(qi), k).ef(128).rerank(8))
        .collect();
    // The in-process reference: builds are deterministic and the codec is
    // trained once on the full corpus on both sides, so the distributed
    // fleet must match this bit-for-bit.
    let reference = ShardedIndex::build(base.clone(), &builder, shards, ShardPolicy::RoundRobin, 2);

    // ---------- node side: build each shard twice, host it twice --------
    // Two deterministic builds of the same shard = two replica nodes.
    // (In production each of these runs `flash_cli serve-node` on its own
    // machine; here they share the demo process.)
    let t0 = Instant::now();
    let codec = builder.train_codec(&base);
    let parts = ShardedIndex::partition(&base, shards, ShardPolicy::RoundRobin);
    let mut servers: Vec<Vec<NodeServer>> = Vec::new();
    let mut id_maps: Vec<Vec<u64>> = Vec::new();
    for (set, ids) in parts {
        let replicas: Vec<NodeServer> = (0..2)
            .map(|_| {
                let index: Arc<dyn AnnIndex> =
                    Arc::from(builder.build_with_codec(set.clone(), &codec));
                NodeServer::bind(
                    &NodeAddr::Tcp("127.0.0.1:0".into()),
                    NodeHandler::new(index),
                    2,
                )
                .expect("bind an ephemeral port")
            })
            .collect();
        id_maps.push(ids);
        servers.push(replicas);
    }
    println!(
        "built {shards} shards x 2 replica nodes in {:.2?}; listening on:",
        t0.elapsed()
    );
    for (s, replicas) in servers.iter().enumerate() {
        for (r, server) in replicas.iter().enumerate() {
            println!("  shard {s} replica {r}: {}", server.addr());
        }
    }

    // ---------- coordinator: remote replicas under the existing stack ---
    let mut groups: Vec<Arc<ReplicaGroup>> = Vec::new();
    let fleet_parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = servers
        .iter()
        .zip(id_maps)
        .map(|(replicas, ids)| {
            let members: Vec<Box<dyn FallibleIndex>> = replicas
                .iter()
                .map(|server| {
                    let transport =
                        SocketTransport::connect(server.addr().clone()).expect("dial node");
                    let remote = RemoteIndex::connect(Arc::new(transport)).expect("handshake");
                    Box::new(remote) as Box<dyn FallibleIndex>
                })
                .collect();
            let group = Arc::new(ReplicaGroup::from_replicas(
                members,
                RoutingPolicy::Primary,
                HealthConfig {
                    error_threshold: 1,
                    probe_after: 1_000,
                },
            ));
            groups.push(Arc::clone(&group));
            (Box::new(group) as Box<dyn AnnIndex>, ids)
        })
        .collect();
    let fleet = ShardedIndex::from_parts(
        fleet_parts,
        ShardPolicy::RoundRobin,
        Arc::new(WorkerPool::new(shards)),
    );

    let run = |label: &str| {
        let t = Instant::now();
        let responses: Vec<SearchResponse> = requests.iter().map(|req| fleet.search(req)).collect();
        let found: Vec<Vec<u32>> = responses
            .iter()
            .map(|r| r.hits.iter().map(|h| h.id as u32).collect())
            .collect();
        let recall = recall_at_k(&found, &gt, k).recall();
        println!(
            "{label}: {} queries in {:.2?}, recall@{k}={recall:.4}",
            requests.len(),
            t.elapsed()
        );
        responses
    };

    let healthy = run("healthy fleet       ");
    for (req, response) in requests.iter().zip(&healthy) {
        assert_eq!(
            response.hits,
            reference.search(req).hits,
            "distributed result diverged from the in-process sharded reference"
        );
    }
    println!("  -> bit-identical to the in-process ShardedIndex");

    // ---------- kill shard 0's primary node mid-run ---------------------
    servers[0][0].shutdown();
    println!("killed shard 0 replica 0 ({})", servers[0][0].addr());
    let wounded = run("primary node killed ");
    for (a, b) in healthy.iter().zip(&wounded) {
        assert_eq!(a.hits, b.hits, "failover must not change results");
    }
    println!("  -> bit-identical to the healthy run");

    let f = groups[0].failover_stats();
    println!(
        "shard 0 failover: errors={} retries={} markdowns={} (generation {})",
        f.errors,
        f.retries,
        f.markdowns,
        groups[0].generation()
    );
    assert_eq!(f.markdowns, 1, "the dead node must be marked down once");
    assert!(groups[0].is_marked_down(0));
    assert_eq!(
        groups[1].failover_stats().markdowns,
        0,
        "the healthy shard never failed over"
    );

    // ---------- transport + server accounting ---------------------------
    for (s, replicas) in servers.iter().enumerate() {
        for (r, server) in replicas.iter().enumerate() {
            let t = server.stats();
            println!(
                "  node shard={s} replica={r}: served frames={} bytes_in={} bytes_out={}",
                t.frames_received, t.bytes_received, t.bytes_sent
            );
        }
    }

    for replicas in &mut servers {
        for server in replicas {
            server.shutdown();
        }
    }
    println!("all nodes shut down cleanly");
}
