//! Semantic-document-retrieval scenario: high-dimensional text embeddings,
//! all five construction methods side by side.
//!
//! ```text
//! cargo run --release --example semantic_search
//! ```
//!
//! Mirrors the workload of the paper's introduction — a retrieval service
//! over deep text embeddings (COHERE-like, 768-d) whose index must be
//! rebuilt quickly — and prints the same per-method columns the paper's
//! Figures 6–8 report: indexing time, index size, recall and QPS.

use hnsw_flash::prelude::*;
use std::time::Instant;

fn main() {
    let n = 10_000;
    let n_queries = 200;
    let k = 10;
    let ef = 96;

    println!("generating {n} COHERE-like 768-d embeddings + {n_queries} queries...");
    let (base, queries) = generate(&DatasetProfile::CohereLike.spec(), n, n_queries, 11);
    let gt = ground_truth(&base, &queries, k);
    let params = HnswParams { c: 128, r: 16, seed: 5 };

    println!();
    println!("| method     | build (s) | size (MB) | recall@{k} |   QPS |");
    println!("|------------|----------:|----------:|----------:|------:|");

    // A small macro-free helper: build, search, report one row.
    let report = |name: &str,
                  build_secs: f64,
                  bytes: usize,
                  search: &mut dyn FnMut(usize) -> Vec<u32>| {
        let mut found = Vec::with_capacity(n_queries);
        let qps = measure_qps(n_queries, |qi| found.push(search(qi)));
        let recall = recall_at_k(&found, &gt, k).recall();
        println!(
            "| {name:<10} | {build_secs:>9.2} | {:>9.2} | {recall:>9.4} | {:>5.0} |",
            bytes as f64 / 1e6,
            qps.qps()
        );
    };

    {
        let t0 = Instant::now();
        let index = Hnsw::build(FullPrecision::new(base.clone()), params);
        let secs = t0.elapsed().as_secs_f64();
        report("HNSW", secs, index.index_bytes(), &mut |qi| {
            index.search(queries.get(qi), k, ef).iter().map(|r| r.id).collect()
        });
    }
    {
        let t0 = Instant::now();
        let index = Hnsw::build(PqProvider::new(base.clone(), 16, 8, 5_000, 3), params);
        let secs = t0.elapsed().as_secs_f64();
        report("HNSW-PQ", secs, index.index_bytes(), &mut |qi| {
            index
                .search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let index = Hnsw::build(SqProvider::new(base.clone(), 8), params);
        let secs = t0.elapsed().as_secs_f64();
        report("HNSW-SQ", secs, index.index_bytes(), &mut |qi| {
            index
                .search_rerank(queries.get(qi), k, ef, 4)
                .iter()
                .map(|r| r.id)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let index = Hnsw::build(PcaProvider::with_variance(base.clone(), 0.9, 5_000), params);
        let secs = t0.elapsed().as_secs_f64();
        report("HNSW-PCA", secs, index.index_bytes(), &mut |qi| {
            index
                .search_rerank(queries.get(qi), k, ef, 4)
                .iter()
                .map(|r| r.id)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let index = FlashHnsw::build_flash(base, FlashParams::auto(768), params);
        let secs = t0.elapsed().as_secs_f64();
        report("HNSW-Flash", secs, index.index_bytes(), &mut |qi| {
            index
                .search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id)
                .collect()
        });
    }
}
