//! Semantic-document-retrieval scenario: high-dimensional text embeddings,
//! every construction method side by side — one loop over the engine's
//! coding matrix, where the pre-engine version needed one hand-rolled
//! block per concrete index type.
//!
//! ```text
//! cargo run --release --example semantic_search
//! ```
//!
//! Mirrors the workload of the paper's introduction — a retrieval service
//! over deep text embeddings (COHERE-like, 768-d) whose index must be
//! rebuilt quickly — and prints the same per-method columns the paper's
//! Figures 6–8 report: indexing time, index size, recall and QPS.

use hnsw_flash::prelude::*;
use std::time::Instant;

fn main() {
    let n = 10_000;
    let n_queries = 200;
    let k = 10;
    let ef = 96;

    println!("generating {n} COHERE-like 768-d embeddings + {n_queries} queries...");
    let (base, queries) = generate(&DatasetProfile::CohereLike.spec(), n, n_queries, 11);
    let gt = ground_truth(&base, &queries, k);

    println!();
    println!("| method     | build (s) | size (MB) | recall@{k} |   QPS |");
    println!("|------------|----------:|----------:|----------:|------:|");

    // OPQ's training alternation dominates runtime at this scale; the
    // remaining five codings are the paper's Figure 6–8 set.
    let codings = [
        Coding::Full,
        Coding::Pq,
        Coding::Sq,
        Coding::Pca,
        Coding::Flash,
    ];
    for coding in codings {
        let t0 = Instant::now();
        let index = IndexBuilder::new(GraphKind::Hnsw, coding)
            .c(128)
            .r(16)
            .seed(5)
            .build(base.clone());
        let build_secs = t0.elapsed().as_secs_f64();

        let rerank = coding.default_rerank();
        let mut found: Vec<Vec<u32>> = Vec::with_capacity(n_queries);
        let qps = measure_qps(n_queries, |qi| {
            let request = SearchRequest::new(queries.get(qi), k).ef(ef).rerank(rerank);
            found.push(
                index
                    .search(&request)
                    .hits
                    .iter()
                    .map(|h| h.id as u32)
                    .collect(),
            );
        });
        let recall = recall_at_k(&found, &gt, k).recall();
        println!(
            "| hnsw:{:<5} | {build_secs:>9.2} | {:>9.2} | {recall:>9.4} | {:>5.0} |",
            coding.name(),
            index.memory_bytes() as f64 / 1e6,
            qps.qps()
        );
    }
}
