//! Overnight index-rebuild scenario (paper Section 1).
//!
//! ```text
//! cargo run --release --example index_rebuild
//! ```
//!
//! Vector databases built on the LSM paradigm periodically reconstruct
//! per-segment graph indexes after data or embedding-model updates; the
//! paper motivates Flash with rebuild windows that must fit in a few
//! overnight hours. This example reproduces that workflow through the
//! engine: a collection is split into segments, each segment's index is
//! rebuilt with baseline HNSW and with HNSW-Flash via `IndexBuilder`, and
//! the end-to-end rebuild wall-clock is compared — including a
//! post-rebuild recall check over the scatter-gathered `AnnIndex` shards.

use hnsw_flash::prelude::*;
use std::time::{Duration, Instant};
use vecstore::split_into_segments;

fn main() {
    let n_total = 24_000;
    let n_segments = 4;
    let n_queries = 100;
    let k = 10;

    println!("generating {n_total} LAION-like 768-d vectors in {n_segments} segments...");
    let (base, queries) = generate(&DatasetProfile::LaionLike.spec(), n_total, n_queries, 23);
    let segments = split_into_segments(&base, n_segments);
    let gt = ground_truth(&base, &queries, k);

    // --- rebuild all segments with one builder per method --------------
    let rebuild_all = |coding: Coding| -> (Duration, Vec<Box<dyn AnnIndex>>) {
        let mut total = Duration::ZERO;
        let mut shards = Vec::new();
        for seg in &segments {
            let t0 = Instant::now();
            shards.push(
                IndexBuilder::new(GraphKind::Hnsw, coding)
                    .c(128)
                    .r(16)
                    .seed(9)
                    .build(seg.clone()),
            );
            total += t0.elapsed();
        }
        (total, shards)
    };

    let (t_full, full_shards) = rebuild_all(Coding::Full);
    let (t_flash, flash_shards) = rebuild_all(Coding::Flash);

    // --- scatter-gather search across segments ------------------------
    // Segment s holds global ids [offset_s, offset_s + len_s); merge the
    // per-segment top-k by exact distance.
    let offsets: Vec<u64> = segments
        .iter()
        .scan(0u64, |acc, s| {
            let start = *acc;
            *acc += s.len() as u64;
            Some(start)
        })
        .collect();

    let search_all = |shards: &[Box<dyn AnnIndex>], rerank: usize, qi: usize| -> Vec<u32> {
        let request = SearchRequest::new(queries.get(qi), k).ef(96).rerank(rerank);
        let mut merged: Vec<Hit> = shards
            .iter()
            .enumerate()
            .flat_map(|(s, shard)| {
                let off = offsets[s];
                shard.search(&request).hits.into_iter().map(move |h| Hit {
                    id: h.id + off,
                    dist: h.dist,
                })
            })
            .collect();
        merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        merged.truncate(k);
        merged.into_iter().map(|h| h.id as u32).collect()
    };

    let found_full: Vec<Vec<u32>> = (0..n_queries)
        .map(|qi| search_all(&full_shards, 1, qi))
        .collect();
    let found_flash: Vec<Vec<u32>> = (0..n_queries)
        .map(|qi| search_all(&flash_shards, 8, qi))
        .collect();

    let r_full = recall_at_k(&found_full, &gt, k).recall();
    let r_flash = recall_at_k(&found_flash, &gt, k).recall();

    println!();
    println!("| rebuild path | total rebuild | recall@{k} after rebuild |");
    println!("|--------------|--------------:|------------------------:|");
    println!("| HNSW         | {t_full:>12.2?} | {r_full:>23.4} |");
    println!("| HNSW-Flash   | {t_flash:>12.2?} | {r_flash:>23.4} |");
    println!(
        "\nrebuild speedup: {:.1}x — the overnight window shrinks accordingly",
        t_full.as_secs_f64() / t_flash.as_secs_f64()
    );
}
