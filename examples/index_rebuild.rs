//! Overnight index-rebuild scenario (paper Section 1).
//!
//! ```text
//! cargo run --release --example index_rebuild
//! ```
//!
//! Vector databases built on the LSM paradigm periodically reconstruct
//! per-segment graph indexes after data or embedding-model updates; the
//! paper motivates Flash with rebuild windows that must fit in a few
//! overnight hours. This example reproduces that workflow: a collection is
//! split into segments, each segment's index is rebuilt with baseline HNSW
//! and with HNSW-Flash, and the end-to-end rebuild wall-clock is compared
//! — including a post-rebuild recall check so the faster rebuild is shown
//! to preserve search quality.

use hnsw_flash::prelude::*;
use std::time::{Duration, Instant};
use vecstore::split_into_segments;

fn main() {
    let n_total = 24_000;
    let n_segments = 4;
    let n_queries = 100;
    let k = 10;

    println!("generating {n_total} LAION-like 768-d vectors in {n_segments} segments...");
    let (base, queries) = generate(&DatasetProfile::LaionLike.spec(), n_total, n_queries, 23);
    let segments = split_into_segments(&base, n_segments);
    let gt = ground_truth(&base, &queries, k);
    let params = HnswParams { c: 128, r: 16, seed: 9 };

    // --- rebuild all segments, baseline -------------------------------
    let mut t_full = Duration::ZERO;
    let mut full_indexes = Vec::new();
    for seg in &segments {
        let t0 = Instant::now();
        full_indexes.push(Hnsw::build(FullPrecision::new(seg.clone()), params));
        t_full += t0.elapsed();
    }

    // --- rebuild all segments, Flash -----------------------------------
    let mut t_flash = Duration::ZERO;
    let mut flash_indexes = Vec::new();
    for seg in &segments {
        let t0 = Instant::now();
        flash_indexes.push(FlashHnsw::build_flash(
            seg.clone(),
            FlashParams::auto(768),
            params,
        ));
        t_flash += t0.elapsed();
    }

    // --- scatter-gather search across segments ------------------------
    // Segment s holds global ids [offset_s, offset_s + len_s); merge the
    // per-segment top-k by exact distance.
    let offsets: Vec<u32> = segments
        .iter()
        .scan(0u32, |acc, s| {
            let start = *acc;
            *acc += s.len() as u32;
            Some(start)
        })
        .collect();

    let search_all = |search_segment: &dyn Fn(usize, &[f32]) -> Vec<SearchResult>,
                      qi: usize|
     -> Vec<u32> {
        let q = queries.get(qi);
        let mut merged: Vec<SearchResult> = (0..n_segments)
            .flat_map(|s| {
                let off = offsets[s];
                search_segment(s, q)
                    .into_iter()
                    .map(move |r| SearchResult { id: r.id + off, dist: r.dist })
            })
            .collect();
        merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        merged.truncate(k);
        merged.into_iter().map(|r| r.id).collect()
    };

    let found_full: Vec<Vec<u32>> = (0..n_queries)
        .map(|qi| search_all(&|s, q| full_indexes[s].search(q, k, 96), qi))
        .collect();
    let found_flash: Vec<Vec<u32>> = (0..n_queries)
        .map(|qi| search_all(&|s, q| flash_indexes[s].search_rerank(q, k, 96, 8), qi))
        .collect();

    let r_full = recall_at_k(&found_full, &gt, k).recall();
    let r_flash = recall_at_k(&found_flash, &gt, k).recall();

    println!();
    println!("| rebuild path | total rebuild | recall@{k} after rebuild |");
    println!("|--------------|--------------:|------------------------:|");
    println!("| HNSW         | {t_full:>12.2?} | {r_full:>23.4} |");
    println!("| HNSW-Flash   | {t_flash:>12.2?} | {r_flash:>23.4} |");
    println!(
        "\nrebuild speedup: {:.1}x — the overnight window shrinks accordingly",
        t_full.as_secs_f64() / t_flash.as_secs_f64()
    );
}
