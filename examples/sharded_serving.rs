//! Sharded, multi-threaded serving with batching and a result cache.
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```
//!
//! Builds the same HNSW × Flash configuration twice — one monolithic
//! index and one 4-shard [`ShardedIndex`] searched by a 4-thread worker
//! pool — then drives a batched query workload through both and through a
//! cache-fronted shard stack, printing the one-line serving summary the
//! `flash_cli search` path also emits (shards, threads, QPS, p50/p99,
//! cache hit rate).

use hnsw_flash::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 12_000;
    let (shards, threads) = (4, 4);
    println!("generating {n} vectors (LAION-like, 512-d)...");
    let (base, queries) = generate(&DatasetProfile::LaionLike.spec(), n, 64, 23);
    let gt = ground_truth(&base, &queries, 10);
    let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash)
        .c(96)
        .r(12)
        .seed(11);

    // ---------- build: monolithic vs sharded --------------------------
    let t0 = Instant::now();
    let monolith = builder.build(base.clone());
    println!("monolithic build: {:.2?}", t0.elapsed());

    let t0 = Instant::now();
    let sharded = ShardedIndex::build(
        base.clone(),
        &builder,
        shards,
        ShardPolicy::RoundRobin,
        threads,
    );
    println!(
        "sharded build:    {:.2?} ({} shards built concurrently on {} threads)",
        t0.elapsed(),
        sharded.shard_count(),
        sharded.threads()
    );

    // ---------- serve: batched workload through both ------------------
    let requests =
        || (0..queries.len()).map(|qi| SearchRequest::new(queries.get(qi), 10).ef(96).rerank(8));
    let run = |index: Arc<dyn AnnIndex>, label: &str| {
        let mut executor = BatchExecutor::new(index).batch_size(16);
        executor.submit_all(requests());
        let report = executor.run();
        let found: Vec<Vec<u32>> = report
            .responses
            .iter()
            .map(|r| r.hits.iter().map(|h| h.id as u32).collect())
            .collect();
        let recall = recall_at_k(&found, &gt, 10).recall();
        let latency = report.latency();
        println!(
            "{label}: qps={:.0} p50={:.3}ms p99={:.3}ms recall@10={recall:.4}",
            report.qps.qps(),
            latency.p50_ms,
            latency.p99_ms,
        );
        report
    };
    run(Arc::from(monolith), "monolith (1 thread) ");
    let sharded = Arc::new(sharded);
    run(
        Arc::clone(&sharded) as Arc<dyn AnnIndex>,
        "sharded  (4 threads)",
    );

    // ---------- cache: repeat traffic hits memory ---------------------
    let cached = Arc::new(CachedIndex::new(
        Arc::clone(&sharded) as Arc<dyn AnnIndex>,
        1024,
    ));
    let mut executor = BatchExecutor::new(Arc::clone(&cached) as Arc<dyn AnnIndex>).batch_size(16);
    // A production-style Zipf-ish mix: every query once, the first 8 hot
    // queries repeated eight more times each.
    executor.submit_all(requests());
    for _ in 0..8 {
        executor
            .submit_all((0..8).map(|qi| SearchRequest::new(queries.get(qi), 10).ef(96).rerank(8)));
    }
    let report = executor.run();
    let stats = cached.cache().stats();
    let latency = report.latency();
    println!(
        "cached   (4 threads): qps={:.0} p50={:.3}ms p99={:.3}ms cache_hit_rate={:.1}% ({} hits / {} lookups)",
        report.qps.qps(),
        latency.p50_ms,
        latency.p99_ms,
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.hits + stats.misses,
    );
    assert!(stats.hits >= 64, "hot queries must be served from memory");

    // ---------- parity spot-check -------------------------------------
    // The beam here is not exhaustive (ef ≪ shard size), so the search is
    // approximate and its exact candidate set can shift with the host's
    // SIMD level; check top-10 overlap against brute force rather than
    // bit-exact equality (`tests/serving.rs` proves bit-exactness under
    // exhaustive settings).
    let exact = FlatIndex::new(base);
    let req = SearchRequest::new(queries.get(0), 10).ef(512).rerank(64);
    let (got, want) = (sharded.search(&req).ids(), exact.search(&req).ids());
    let overlap = got.iter().filter(|id| want.contains(id)).count();
    assert!(
        overlap >= 8,
        "sharded search diverged from brute force: {overlap}/10 overlap"
    );
    println!("parity spot-check vs brute force: {overlap}/10 top-10 overlap");
}
