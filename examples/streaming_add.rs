//! Streaming insertion: HNSW's native add support, preserved by Flash and
//! served through the engine.
//!
//! ```text
//! cargo run --release --example streaming_add
//! ```
//!
//! Section 2.1.3 of the paper stresses that prior construction-speedup
//! attempts weakened or discarded HNSW's native incremental insertion.
//! Flash does not: vertices can keep arriving after the initial build,
//! because inserting through the codec only appends codes and updates
//! neighbor blocks. This example wraps a streaming HNSW-Flash index in
//! the engine's `GraphIndex` adapter — queries go through `AnnIndex`
//! while inserts keep flowing through the wrapped index underneath.

use engine::GraphIndex;
use hnsw_flash::prelude::*;

fn main() {
    let n_total = 8_000;
    let n_initial = n_total / 2;
    let n_queries = 100;
    let k = 5;

    println!("generating a {n_total}-vector stream (IMAGENET-like, 768-d)...");
    let (base, queries) = generate(&DatasetProfile::ImagenetLike.spec(), n_total, n_queries, 31);

    // Train the codec on the full collection the stream will reach (in
    // production this is the previous snapshot; codebooks are stable under
    // distribution drift far larger than one ingest cycle). `GraphIndex`
    // is the engine's delegating wrapper: `inner()` exposes the streaming
    // construction API, the trait serves queries.
    let provider = FlashProvider::new(base.clone(), FlashParams::auto(768));
    let index = GraphIndex::new(Hnsw::new(
        provider,
        HnswParams {
            c: 96,
            r: 16,
            seed: 13,
        },
    ));
    let serving: &dyn AnnIndex = &index;

    println!("phase 1: inserting the initial {n_initial} vectors...");
    for id in 0..n_initial as u32 {
        index.inner().insert(id);
    }

    let search_ids = |qi: usize| -> Vec<u32> {
        let request = SearchRequest::new(queries.get(qi), k).ef(96).rerank(8);
        serving
            .search(&request)
            .hits
            .iter()
            .map(|h| h.id as u32)
            .collect()
    };

    let gt_initial = ground_truth(&base.slice(0, n_initial), &queries, k);
    let found: Vec<Vec<u32>> = (0..n_queries).map(search_ids).collect();
    println!(
        "  recall@{k} against the first {n_initial}: {:.4}",
        recall_at_k(&found, &gt_initial, k).recall()
    );

    println!(
        "phase 2: streaming in the remaining {} vectors...",
        n_total - n_initial
    );
    for id in n_initial as u32..n_total as u32 {
        index.inner().insert(id);
    }

    let gt_full = ground_truth(&base, &queries, k);
    let found: Vec<Vec<u32>> = (0..n_queries).map(search_ids).collect();
    println!(
        "  recall@{k} against all {n_total}: {:.4}",
        recall_at_k(&found, &gt_full, k).recall()
    );
    println!("no rebuild was needed — native add is preserved under Flash.");
}
