//! Attribute-constrained (hybrid) search: vectors carry a categorical
//! label and queries must return only matching vectors.
//!
//! ```text
//! cargo run --release --example filtered_search
//! ```
//!
//! Demonstrates both deployment shapes the paper's introduction alludes to:
//! one shared graph with a query-time predicate, and specialized per-label
//! sub-indexes whose construction cost Flash compresses.

use hnsw_flash::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 12_000;
    let labels_count = 8u32;
    let k = 5;

    println!("generating {n} vectors (LAION-like, 768-d) with {labels_count} labels...");
    let (base, queries) = generate(&DatasetProfile::LaionLike.spec(), n, 20, 9);
    let mut rng = SmallRng::seed_from_u64(0xAB);
    let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..labels_count)).collect();

    // --- shape 1: one shared graph + query-time filter -----------------
    let t0 = Instant::now();
    let shared = Hnsw::build(
        FullPrecision::new(base.clone()),
        HnswParams { c: 128, r: 16, seed: 1 },
    );
    println!("shared graph built in {:.2?}", t0.elapsed());

    let want = 3u32;
    let labels_ref = &labels;
    let accept = move |id: u32| labels_ref[id as usize] == want;
    let hits = shared.search_filtered(queries.get(0), k, 128, &accept);
    println!("\nfiltered search (label = {want}) on the shared graph:");
    for h in &hits {
        assert_eq!(labels[h.id as usize], want);
        println!("  id {:>6}  label {}  dist {:.4}", h.id, labels[h.id as usize], h.dist);
    }

    // --- shape 2: specialized per-label indexes, Flash-accelerated -----
    let lp = LabeledParams { hnsw: HnswParams { c: 96, r: 12, seed: 2 }, min_graph_size: 64 };

    let t0 = Instant::now();
    let specialized_full = LabeledHnsw::build(&base, &labels, lp, FullPrecision::new);
    let t_full = t0.elapsed();

    // Train the Flash codec once on the whole corpus; every partition
    // shares it and only pays encoding.
    let t0 = Instant::now();
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = (base.len() / 2).clamp(64, 10_000);
    let codec = FlashCodec::train(&base, fp);
    let specialized_flash =
        LabeledHnsw::build(&base, &labels, lp, |subset| FlashProvider::from_codec(subset, codec.clone()));
    let t_flash = t0.elapsed();

    println!("\nspecialized per-label builds ({} partitions):", specialized_full.partitions());
    println!("  full-precision: {t_full:.2?}");
    println!("  Flash:          {t_flash:.2?}  ({:.1}x faster)",
        t_full.as_secs_f64() / t_flash.as_secs_f64().max(1e-9));

    let hits = specialized_flash.search(queries.get(0), want, k, 96);
    println!("\nsame query on the specialized Flash index:");
    for h in &hits {
        assert_eq!(labels[h.id as usize], want);
        println!("  id {:>6}  label {}  dist {:.4}", h.id, labels[h.id as usize], h.dist);
    }
}
