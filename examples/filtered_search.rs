//! Attribute-constrained (hybrid) search: vectors carry a categorical
//! label and queries must return only matching vectors.
//!
//! ```text
//! cargo run --release --example filtered_search
//! ```
//!
//! Demonstrates both deployment shapes the paper's introduction alludes to,
//! both served through the engine's one request model: one shared graph
//! with a query-time predicate (`SearchRequest::filter`), and specialized
//! per-label sub-indexes (`IndexBuilder::build_labeled` +
//! `SearchRequest::label`) whose construction cost Flash compresses.

use hnsw_flash::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 12_000;
    let labels_count = 8u32;
    let k = 5;

    println!("generating {n} vectors (LAION-like, 768-d) with {labels_count} labels...");
    let (base, queries) = generate(&DatasetProfile::LaionLike.spec(), n, 20, 9);
    let mut rng = SmallRng::seed_from_u64(0xAB);
    let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..labels_count)).collect();
    let labels = Arc::new(labels);

    // --- shape 1: one shared graph + query-time filter -----------------
    let t0 = Instant::now();
    let shared = IndexBuilder::new(GraphKind::Hnsw, Coding::Full)
        .c(128)
        .r(16)
        .seed(1)
        .build(base.clone());
    println!("shared graph built in {:.2?}", t0.elapsed());

    let want = 3u32;
    let labels_for_filter = Arc::clone(&labels);
    let request = SearchRequest::new(queries.get(0), k)
        .ef(128)
        .filter(move |id| labels_for_filter[id as usize] == want);
    let hits = shared.search(&request).hits;
    println!("\nfiltered search (label = {want}) on the shared graph:");
    for h in &hits {
        assert_eq!(labels[h.id as usize], want);
        println!(
            "  id {:>6}  label {}  dist {:.4}",
            h.id, labels[h.id as usize], h.dist
        );
    }

    // --- shape 2: specialized per-label indexes, Flash-accelerated -----
    let t0 = Instant::now();
    let specialized_full = IndexBuilder::new(GraphKind::Hnsw, Coding::Full)
        .c(96)
        .r(12)
        .seed(2)
        .build_labeled(&base, &labels, 64)
        .unwrap();
    let t_full = t0.elapsed();

    // The Flash codec trains once on the whole corpus; every partition
    // shares it and only pays encoding.
    let t0 = Instant::now();
    let specialized_flash = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash)
        .c(96)
        .r(12)
        .seed(2)
        .build_labeled(&base, &labels, 64)
        .unwrap();
    let t_flash = t0.elapsed();

    println!("\nspecialized per-label builds:");
    println!("  full-precision: {t_full:.2?}");
    println!(
        "  Flash:          {t_flash:.2?}  ({:.1}x faster)",
        t_full.as_secs_f64() / t_flash.as_secs_f64().max(1e-9)
    );
    assert_eq!(specialized_full.len(), n);

    let request = SearchRequest::new(queries.get(0), k).ef(96).label(want);
    let hits = specialized_flash.search(&request).hits;
    println!("\nsame query on the specialized Flash index:");
    for h in &hits {
        assert_eq!(labels[h.id as usize], want);
        println!(
            "  id {:>6}  label {}  dist {:.4}",
            h.id, labels[h.id as usize], h.dist
        );
    }
}
