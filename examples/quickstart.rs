//! Quickstart: build an HNSW-Flash index and search it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a synthetic embedding dataset, builds the index two ways
//! (baseline full-precision HNSW and HNSW-Flash), and compares build time
//! and top-10 recall on held-out queries.

use hnsw_flash::prelude::*;
use std::time::Instant;

fn main() {
    let n = 20_000;
    let n_queries = 200;
    let k = 10;

    println!("generating {n} vectors (SSNPP-like, 256-d) + {n_queries} queries...");
    let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), n, n_queries, 42);
    let gt = ground_truth(&base, &queries, k);

    let params = HnswParams { c: 128, r: 16, seed: 7 };

    // --- baseline: full-precision HNSW --------------------------------
    let t0 = Instant::now();
    let baseline = Hnsw::build(FullPrecision::new(base.clone()), params);
    let t_full = t0.elapsed();

    // --- HNSW-Flash ----------------------------------------------------
    let t0 = Instant::now();
    let flash_index = FlashHnsw::build_flash(base, FlashParams::auto(256), params);
    let t_flash = t0.elapsed();

    // --- evaluate ------------------------------------------------------
    let recall_of = |found: &[Vec<u32>]| recall_at_k(found, &gt, k).recall();

    let found_full: Vec<Vec<u32>> = (0..n_queries)
        .map(|qi| {
            baseline
                .search(queries.get(qi), k, 128)
                .iter()
                .map(|r| r.id)
                .collect()
        })
        .collect();
    let found_flash: Vec<Vec<u32>> = (0..n_queries)
        .map(|qi| {
            flash_index
                .search_rerank(queries.get(qi), k, 128, 8)
                .iter()
                .map(|r| r.id)
                .collect()
        })
        .collect();

    println!();
    println!("| method      | build time | recall@{k} | index bytes |");
    println!("|-------------|-----------:|----------:|------------:|");
    println!(
        "| HNSW        | {:>9.2?} | {:>9.4} | {:>11} |",
        t_full,
        recall_of(&found_full),
        baseline.index_bytes()
    );
    println!(
        "| HNSW-Flash  | {:>9.2?} | {:>9.4} | {:>11} |",
        t_flash,
        recall_of(&found_flash),
        flash_index.index_bytes()
    );
    println!(
        "\nspeedup: {:.1}x",
        t_full.as_secs_f64() / t_flash.as_secs_f64()
    );
}
