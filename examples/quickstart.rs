//! Quickstart: build an HNSW-Flash index through the engine and search it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a synthetic embedding dataset, builds the index two ways
//! (baseline full-precision HNSW and HNSW-Flash) through the unified
//! `IndexBuilder`, and compares build time and top-10 recall on held-out
//! queries — both indexes serving through the same `AnnIndex` trait.

use hnsw_flash::prelude::*;
use std::time::Instant;

fn main() {
    let n = 20_000;
    let n_queries = 200;
    let k = 10;

    println!("generating {n} vectors (SSNPP-like, 256-d) + {n_queries} queries...");
    let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), n, n_queries, 42);
    let gt = ground_truth(&base, &queries, k);

    // --- baseline: full-precision HNSW --------------------------------
    let t0 = Instant::now();
    let baseline = IndexBuilder::new(GraphKind::Hnsw, Coding::Full)
        .c(128)
        .r(16)
        .seed(7)
        .build(base.clone());
    let t_full = t0.elapsed();

    // --- HNSW-Flash ----------------------------------------------------
    let t0 = Instant::now();
    let flash_index = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash)
        .c(128)
        .r(16)
        .seed(7)
        .build(base);
    let t_flash = t0.elapsed();

    // --- evaluate: same request model for both ------------------------
    let recall_of = |found: &[Vec<u32>]| recall_at_k(found, &gt, k).recall();
    let search_ids = |index: &dyn AnnIndex, rerank: usize| -> Vec<Vec<u32>> {
        (0..n_queries)
            .map(|qi| {
                let request = SearchRequest::new(queries.get(qi), k)
                    .ef(128)
                    .rerank(rerank);
                index
                    .search(&request)
                    .hits
                    .iter()
                    .map(|h| h.id as u32)
                    .collect()
            })
            .collect()
    };

    let found_full = search_ids(baseline.as_ref(), 1);
    let found_flash = search_ids(flash_index.as_ref(), 8);

    println!();
    println!("| method      | build time | recall@{k} | index bytes |");
    println!("|-------------|-----------:|----------:|------------:|");
    println!(
        "| HNSW        | {:>9.2?} | {:>9.4} | {:>11} |",
        t_full,
        recall_of(&found_full),
        baseline.memory_bytes()
    );
    println!(
        "| HNSW-Flash  | {:>9.2?} | {:>9.4} | {:>11} |",
        t_flash,
        recall_of(&found_flash),
        flash_index.memory_bytes()
    );
    println!(
        "\nspeedup: {:.1}x",
        t_full.as_secs_f64() / t_flash.as_secs_f64()
    );
}
